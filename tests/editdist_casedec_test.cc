// Unit and parity tests for the fixed-length edit distance fast path
// (editdist/casedec.h): case decomposition onto the Hamming stack must
// return byte-identical result sets to a brute-force banded-DP scan (and
// hence to the pivotal path) for every tau, length, and alphabet tried.

#include "editdist/casedec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/strings.h"
#include "editdist/verify.h"

namespace pigeonring::editdist {
namespace {

std::string RandomFixedString(Rng& rng, int len, int alphabet) {
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.NextBounded(alphabet)));
  }
  return s;
}

std::vector<int> BruteForce(const std::vector<std::string>& data,
                            const std::string& query, int tau) {
  std::vector<int> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (BandedEditDistance(data[i], query, tau) <= tau) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Building blocks.
// ---------------------------------------------------------------------------

TEST(CaseDecTest, UniformLengthDetection) {
  EXPECT_EQ(CaseDecSearcher::UniformLength({}), 0);
  EXPECT_EQ(CaseDecSearcher::UniformLength({"abc", "xyz"}), 3);
  EXPECT_EQ(CaseDecSearcher::UniformLength({"abc", "xy"}), -1);
  EXPECT_EQ(CaseDecSearcher::UniformLength({""}), -1);
  EXPECT_EQ(CaseDecSearcher::UniformLength({"a"}), 1);
  const std::string at_limit(CaseDecSearcher::kMaxLength, 'a');
  EXPECT_EQ(CaseDecSearcher::UniformLength({at_limit}),
            CaseDecSearcher::kMaxLength);
  const std::string too_long(CaseDecSearcher::kMaxLength + 1, 'a');
  EXPECT_EQ(CaseDecSearcher::UniformLength({too_long}), -1);
}

TEST(CaseDecTest, NumCasesAndVariantCounts) {
  // tau < length: floor(tau / 2) + 1 cases (capped by length - 1).
  EXPECT_EQ(CaseDecSearcher::NumCases(8, 0), 1);
  EXPECT_EQ(CaseDecSearcher::NumCases(8, 1), 1);
  EXPECT_EQ(CaseDecSearcher::NumCases(8, 2), 2);
  EXPECT_EQ(CaseDecSearcher::NumCases(8, 3), 2);
  EXPECT_EQ(CaseDecSearcher::NumCases(8, 4), 3);
  // tau >= length or empty: verify-only regime, no filter cases.
  EXPECT_EQ(CaseDecSearcher::NumCases(0, 2), 0);
  EXPECT_EQ(CaseDecSearcher::NumCases(3, 3), 0);
  EXPECT_EQ(CaseDecSearcher::NumCases(3, 7), 0);

  EXPECT_EQ(CaseDecSearcher::VariantsPerRecord(8, 0), 1);
  EXPECT_EQ(CaseDecSearcher::VariantsPerRecord(8, 1), 8);
  EXPECT_EQ(CaseDecSearcher::VariantsPerRecord(8, 2), 28);
  EXPECT_EQ(CaseDecSearcher::VariantsPerRecord(5, 5), 1);
  EXPECT_EQ(CaseDecSearcher::VariantsPerRecord(128, 2), 128 * 127 / 2);
}

TEST(CaseDecTest, DeletionSetsAreLexicographicAndComplete) {
  std::vector<std::vector<int>> sets;
  CaseDecSearcher::ForEachDeletionSet(
      4, 2, [&](const std::vector<int>& d) { sets.push_back(d); });
  const std::vector<std::vector<int>> expected = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(sets, expected);

  sets.clear();
  CaseDecSearcher::ForEachDeletionSet(
      3, 0, [&](const std::vector<int>& d) { sets.push_back(d); });
  EXPECT_EQ(sets, std::vector<std::vector<int>>{{}});

  int count = 0;
  CaseDecSearcher::ForEachDeletionSet(
      6, 3, [&](const std::vector<int>&) { ++count; });
  EXPECT_EQ(count, 20);  // C(6, 3)
}

TEST(CaseDecTest, SignatureBitDistanceBoundsCharacterHamming) {
  // For equal-length remnants, signature bit distance = 2 * (number of
  // folded-character mismatches) <= 2 * char-Hamming; exact on a..z.
  Rng rng(17);
  const std::vector<int> no_deletions;
  for (int trial = 0; trial < 200; ++trial) {
    const int len = 1 + static_cast<int>(rng.NextBounded(20));
    const std::string a = RandomFixedString(rng, len, 26);
    std::string b = a;
    int char_ham = 0;
    for (int i = 0; i < len; ++i) {
      if (rng.NextBounded(3) == 0) {
        const char c = static_cast<char>('a' + rng.NextBounded(26));
        if (c != b[i]) ++char_ham;
        b[i] = c;
      }
    }
    const BitVector sa = CaseDecSearcher::EncodeVariant(a, no_deletions);
    const BitVector sb = CaseDecSearcher::EncodeVariant(b, no_deletions);
    int bit_ham = 0;
    for (size_t w = 0; w < sa.words().size(); ++w) {
      bit_ham += __builtin_popcountll(sa.words()[w] ^ sb.words()[w]);
    }
    EXPECT_EQ(bit_ham, 2 * char_ham) << a << " vs " << b;
  }
}

TEST(CaseDecTest, EncodeVariantSkipsDeletedPositions) {
  const BitVector direct = CaseDecSearcher::EncodeVariant("ace", {});
  const BitVector via_deletion =
      CaseDecSearcher::EncodeVariant("abcde", {1, 3});
  EXPECT_EQ(direct.words(), via_deletion.words());
}

// ---------------------------------------------------------------------------
// Parity with brute force across tau, lengths, alphabets.
// ---------------------------------------------------------------------------

TEST(CaseDecTest, ParityAcrossTauLengthsAndAlphabets) {
  Rng rng(99);
  for (const int length : {4, 7, 12, 24}) {
    for (const int alphabet : {2, 4, 26}) {
      std::vector<std::string> data;
      for (int i = 0; i < 120; ++i) {
        data.push_back(RandomFixedString(rng, length, alphabet));
      }
      // Seed near-duplicates so small-tau result sets are non-trivial.
      for (int i = 0; i < 40; ++i) {
        std::string s = data[rng.NextBounded(80)];
        const int pos = static_cast<int>(rng.NextBounded(length));
        s[pos] = static_cast<char>('a' + rng.NextBounded(alphabet));
        data.push_back(std::move(s));
      }
      for (const int tau : {1, 2, 3, 4}) {
        CaseDecSearcher searcher(&data, tau);
        for (int q = 0; q < 30; ++q) {
          const std::string query =
              q % 2 == 0 ? data[rng.NextBounded(data.size())]
                         : RandomFixedString(rng, length, alphabet);
          for (const int chain : {1, 2, 4}) {
            CaseDecStats stats;
            const auto got = searcher.Search(query, chain, &stats);
            const auto expected = BruteForce(data, query, tau);
            ASSERT_EQ(got, expected)
                << "L=" << length << " sigma=" << alphabet << " tau=" << tau
                << " chain=" << chain << " query=" << query;
            EXPECT_EQ(stats.results, static_cast<int64_t>(expected.size()));
            EXPECT_GE(stats.candidates, stats.results);
          }
        }
      }
    }
  }
}

TEST(CaseDecTest, ParityOnPerturbedNearDuplicateCollection) {
  datagen::StringConfig config;
  config.num_records = 250;
  config.fixed_length = 16;
  config.duplicate_fraction = 0.5;
  config.max_perturb_edits = 4;
  config.seed = 23;
  const auto data = datagen::GenerateStrings(config);
  for (const int tau : {2, 3, 4}) {
    CaseDecSearcher searcher(&data, tau);
    for (size_t q = 0; q < data.size(); q += 7) {
      const auto got = searcher.Search(data[q], 2);
      const auto expected = BruteForce(data, data[q], tau);
      ASSERT_EQ(got, expected) << "tau=" << tau << " q=" << q;
      // Self-match guarantees a non-empty result set.
      ASSERT_TRUE(std::binary_search(got.begin(), got.end(),
                                     static_cast<int>(q)));
    }
  }
}

TEST(CaseDecTest, VerifyOnlyRegimeWhenTauReachesLength) {
  Rng rng(31);
  std::vector<std::string> data;
  for (int i = 0; i < 60; ++i) data.push_back(RandomFixedString(rng, 3, 4));
  for (const int tau : {3, 5}) {  // tau >= L = 3
    CaseDecSearcher searcher(&data, tau);
    EXPECT_TRUE(searcher.cases().empty());
    const std::string query = RandomFixedString(rng, 3, 4);
    CaseDecStats stats;
    const auto got = searcher.Search(query, 2, &stats);
    EXPECT_EQ(got, BruteForce(data, query, tau));
    EXPECT_EQ(stats.candidates, static_cast<int64_t>(data.size()));
  }
}

TEST(CaseDecTest, LengthMismatchedQueriesFallBackSoundly) {
  Rng rng(41);
  std::vector<std::string> data;
  for (int i = 0; i < 80; ++i) data.push_back(RandomFixedString(rng, 10, 6));
  CaseDecSearcher searcher(&data, 3);
  for (const int qlen : {5, 8, 9, 11, 12, 13, 20}) {
    const std::string query = RandomFixedString(rng, qlen, 6);
    CaseDecStats stats;
    const auto got = searcher.Search(query, 2, &stats);
    EXPECT_EQ(got, BruteForce(data, query, 3)) << "qlen=" << qlen;
    if (std::abs(qlen - 10) > 3) {
      // |length delta| > tau: pruned without touching any record.
      EXPECT_TRUE(got.empty());
      EXPECT_EQ(stats.candidates, 0);
    }
  }
  // The empty query is just an extreme length mismatch.
  EXPECT_TRUE(searcher.Search("", 2).empty());
}

TEST(CaseDecTest, EmptyAndSingleRecordCollections) {
  const std::vector<std::string> empty;
  CaseDecSearcher on_empty(&empty, 2);
  EXPECT_TRUE(on_empty.cases().empty());
  EXPECT_TRUE(on_empty.Search("abc", 2).empty());
  EXPECT_TRUE(on_empty.Search("", 2).empty());

  const std::vector<std::string> one = {"abcd"};
  CaseDecSearcher on_one(&one, 2);
  EXPECT_EQ(on_one.Search("abcd", 2), std::vector<int>{0});
  EXPECT_EQ(on_one.Search("abxd", 2), std::vector<int>{0});
  EXPECT_EQ(on_one.Search("bcda", 2), std::vector<int>{0});  // del + ins
  EXPECT_TRUE(on_one.Search("zzzz", 2).empty());
}

TEST(CaseDecTest, TauZeroIsExactMatch) {
  const std::vector<std::string> data = {"abc", "abd", "abc", "xyz"};
  CaseDecSearcher searcher(&data, 0);
  EXPECT_EQ(searcher.Search("abc", 1), (std::vector<int>{0, 2}));
  EXPECT_TRUE(searcher.Search("abe", 1).empty());
}

TEST(CaseDecTest, FromBuiltAnswersIdentically) {
  Rng rng(53);
  std::vector<std::string> data;
  for (int i = 0; i < 100; ++i) data.push_back(RandomFixedString(rng, 9, 8));
  const int tau = 3;
  CaseDecSearcher built(&data, tau);
  // Rebuild the per-case state exactly as the storage loader does.
  std::vector<CaseDecSearcher::Case> cases;
  for (const auto& c : built.cases()) {
    cases.push_back(CaseDecSearcher::Case{c.indels, c.hamming_tau,
                                          c.searcher});
  }
  CaseDecSearcher adopted =
      CaseDecSearcher::FromBuilt(&data, tau, std::move(cases));
  for (int q = 0; q < 40; ++q) {
    const std::string query = q % 2 == 0
                                  ? data[rng.NextBounded(data.size())]
                                  : RandomFixedString(rng, 9, 8);
    EXPECT_EQ(adopted.Search(query, 2), built.Search(query, 2));
  }
}

TEST(CaseDecTest, CopiesSearchIndependently) {
  Rng rng(61);
  std::vector<std::string> data;
  for (int i = 0; i < 80; ++i) data.push_back(RandomFixedString(rng, 8, 6));
  CaseDecSearcher original(&data, 2);
  CaseDecSearcher copy = original;
  for (int q = 0; q < 20; ++q) {
    const std::string query = data[rng.NextBounded(data.size())];
    EXPECT_EQ(copy.Search(query, 2), original.Search(query, 2));
  }
}

TEST(CaseDecTest, StatsReportFilterReduction) {
  // On a collection with few near-duplicates, the chain filter must verify
  // far fewer records than a full scan would.
  Rng rng(71);
  std::vector<std::string> data;
  for (int i = 0; i < 2000; ++i) {
    data.push_back(RandomFixedString(rng, 16, 26));
  }
  CaseDecSearcher searcher(&data, 3);
  int64_t total_candidates = 0;
  for (int q = 0; q < 20; ++q) {
    CaseDecStats stats;
    searcher.Search(data[rng.NextBounded(data.size())], 2, &stats);
    total_candidates += stats.candidates;
    EXPECT_GE(stats.fast_path_hits, stats.candidates);
  }
  EXPECT_LT(total_candidates, 20 * static_cast<int64_t>(data.size()) / 10);
}

}  // namespace
}  // namespace pigeonring::editdist
