// Unit, integration, and property tests for string edit distance search
// (verification kernels, q-gram machinery, Pivotal baseline, Ring upgrade).

#include "editdist/pivotal.h"

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/random.h"
#include "datagen/strings.h"
#include "editdist/qgram.h"
#include "editdist/verify.h"

namespace pigeonring::editdist {
namespace {

using datagen::GenerateStrings;
using datagen::StringConfig;

std::string RandomString(Rng& rng, int min_len, int max_len, int alphabet) {
  const int len = static_cast<int>(rng.NextInRange(min_len, max_len));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.NextBounded(alphabet)));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Verification kernels.
// ---------------------------------------------------------------------------

TEST(VerifyTest, EditDistanceKnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("abc", "abd"), 1);
  EXPECT_EQ(EditDistance("llabcdefkk", "llabghijkk"), 4);  // paper Example 11
}

TEST(VerifyTest, BandedMatchesFullDpWithinThreshold) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string a = RandomString(rng, 0, 20, 4);
    const std::string b = RandomString(rng, 0, 20, 4);
    const int exact = EditDistance(a, b);
    for (int tau : {0, 1, 2, 3, 5, 8}) {
      const int banded = BandedEditDistance(a, b, tau);
      if (exact <= tau) {
        EXPECT_EQ(banded, exact) << a << " vs " << b << " tau=" << tau;
      } else {
        EXPECT_GT(banded, tau) << a << " vs " << b << " tau=" << tau;
      }
    }
  }
}

TEST(VerifyTest, MinSubstringEditDistanceBasics) {
  // Pattern occurs exactly inside the window: distance 0.
  EXPECT_EQ(MinSubstringEditDistance("abc", "xxabcxx", 0, 6, 5), 0);
  // Window excludes the occurrence.
  EXPECT_GT(MinSubstringEditDistance("abc", "abcxxxx", 3, 6, 5), 0);
  // Empty text region.
  EXPECT_EQ(MinSubstringEditDistance("ab", "xyz", 5, 9, 4), 2);
}

TEST(VerifyTest, MinSubstringEditDistanceMatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string pattern = RandomString(rng, 1, 4, 3);
    const std::string text = RandomString(rng, 0, 12, 3);
    const int win_lo = static_cast<int>(rng.NextInRange(-2, 10));
    const int win_hi = win_lo + static_cast<int>(rng.NextBounded(6));
    const int max_len =
        static_cast<int>(pattern.size()) + static_cast<int>(rng.NextBounded(4));
    int expected = static_cast<int>(pattern.size());
    for (int u = std::max(0, win_lo);
         u <= std::min(win_hi, static_cast<int>(text.size()) - 1); ++u) {
      for (int len = 0; len <= max_len && u + len <= static_cast<int>(text.size());
           ++len) {
        expected = std::min(
            expected, EditDistance(pattern, text.substr(u, len)));
      }
    }
    const int got =
        MinSubstringEditDistance(pattern, text, win_lo, win_hi, max_len);
    // The implementation may consider slightly longer substrings (it is a
    // lower bound; see verify.cc), so got <= expected, and both agree when
    // the pattern fits in max_len.
    EXPECT_LE(got, expected);
    EXPECT_GE(got, 0);
  }
}

TEST(VerifyTest, AlphabetMaskAndContentFilterBound) {
  // ed(x, y) <= t implies popcount(mask(x) ^ mask(y)) <= 2t, so
  // ceil(popcount / 2) <= ed.
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string a = RandomString(rng, 0, 10, 8);
    const std::string b = RandomString(rng, 0, 10, 8);
    const int ed = EditDistance(a, b);
    const int hamming = Popcount64(AlphabetMask(a) ^ AlphabetMask(b));
    EXPECT_LE((hamming + 1) / 2, ed) << a << " vs " << b;
  }
}

// ---------------------------------------------------------------------------
// q-gram machinery.
// ---------------------------------------------------------------------------

TEST(QgramTest, ProfileSelectsRequestedCounts) {
  const std::vector<std::string> data = {"abcdefghijkl", "abcabcabcabc",
                                         "mnopqrstuvwx"};
  GramDictionary dict(data, 2);
  const int tau = 2;
  for (const std::string& s : data) {
    const GramProfile profile = dict.Profile(s, tau);
    ASSERT_FALSE(profile.is_short);
    EXPECT_GE(static_cast<int>(profile.prefix.size()), 2 * tau + 1);
    EXPECT_EQ(static_cast<int>(profile.pivotal.size()), tau + 1);
    // Pivotal grams are pairwise disjoint and sorted by position.
    for (size_t j = 1; j < profile.pivotal.size(); ++j) {
      EXPECT_GE(profile.pivotal[j].position,
                profile.pivotal[j - 1].position + 2);
    }
    // Prefix is sorted by (rank, position).
    for (size_t j = 1; j < profile.prefix.size(); ++j) {
      EXPECT_LE(profile.prefix[j - 1].rank, profile.prefix[j].rank);
    }
  }
}

TEST(QgramTest, ShortStringsAreFlagged) {
  // With padding, a string of length n yields n + kappa - 1 grams, so the
  // short flag trips when n + kappa - 1 < kappa*tau + 1.
  GramDictionary dict({"abcdefgh"}, 3);
  EXPECT_TRUE(dict.Profile("", 1).is_short);         // 2 grams < 4
  EXPECT_FALSE(dict.Profile("ab", 1).is_short);      // 4 grams >= 4
  EXPECT_TRUE(dict.Profile("abcd", 2).is_short);     // 6 grams < 7
  EXPECT_FALSE(dict.Profile("abcde", 2).is_short);   // 7 grams >= 7
  EXPECT_FALSE(dict.Profile("abcdefgh", 1).is_short);
}

TEST(QgramTest, UnknownQueryGramsGetNegativeRanks) {
  GramDictionary dict({"aaaa"}, 2);
  const GramProfile profile = dict.Profile("zzzz", 1);
  ASSERT_FALSE(profile.is_short);
  for (const Gram& g : profile.prefix) EXPECT_LT(g.rank, 0);
}

// ---------------------------------------------------------------------------
// End-to-end correctness.
// ---------------------------------------------------------------------------

struct EditCase {
  int avg_length;
  int tau;
  int kappa;
  EditFilter filter;
  int chain_length;
};

class EditSearchCorrectness : public ::testing::TestWithParam<EditCase> {};

TEST_P(EditSearchCorrectness, MatchesBruteForce) {
  const auto [avg_length, tau, kappa, filter, chain_length] = GetParam();
  StringConfig config;
  config.num_records = 1200;
  config.avg_length = avg_length;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = std::max(1, tau);
  config.seed = 500 + avg_length + tau;
  const auto data = GenerateStrings(config);
  EditDistanceSearcher searcher(&data, tau, kappa);
  Rng rng(19);
  for (int i = 0; i < 12; ++i) {
    const std::string& query = data[rng.NextBounded(data.size())];
    const auto expected = BruteForceEditSearch(data, query, tau);
    EXPECT_EQ(searcher.Search(query, filter, chain_length), expected)
        << "query=" << query << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EditSearchCorrectness,
    ::testing::Values(
        EditCase{16, 1, 3, EditFilter::kPivotal, 1},
        EditCase{16, 2, 2, EditFilter::kPivotal, 1},
        EditCase{16, 2, 2, EditFilter::kRing, 2},
        EditCase{16, 2, 2, EditFilter::kRing, 3},
        EditCase{16, 4, 2, EditFilter::kRing, 3},
        EditCase{40, 4, 4, EditFilter::kRing, 3},
        EditCase{40, 6, 4, EditFilter::kPivotal, 1},
        EditCase{40, 6, 4, EditFilter::kRing, 4},
        EditCase{101, 8, 6, EditFilter::kRing, 3},
        EditCase{16, 0, 2, EditFilter::kRing, 1}),
    [](const ::testing::TestParamInfo<EditCase>& info) {
      return "len" + std::to_string(info.param.avg_length) + "_tau" +
             std::to_string(info.param.tau) + "_k" +
             std::to_string(info.param.kappa) +
             (info.param.filter == EditFilter::kPivotal ? "_piv" : "_ring") +
             "_l" + std::to_string(info.param.chain_length);
    });

TEST(EditSearchTest, PerturbedCopiesAreFound) {
  StringConfig config;
  config.num_records = 300;
  config.avg_length = 20;
  config.duplicate_fraction = 0.0;
  config.seed = 23;
  auto data = GenerateStrings(config);
  // Plant three known near-duplicates of data[0].
  std::string base = data[0];
  std::string sub = base;
  sub[2] = sub[2] == 'a' ? 'b' : 'a';
  std::string del = base.substr(0, 4) + base.substr(5);
  std::string ins = base.substr(0, 3) + "q" + base.substr(3);
  data.push_back(sub);
  data.push_back(del);
  data.push_back(ins);
  EditDistanceSearcher searcher(&data, 2, 2);
  const auto results = searcher.Search(base, EditFilter::kRing, 3);
  for (int planted : {300, 301, 302}) {
    EXPECT_TRUE(std::find(results.begin(), results.end(), planted) !=
                results.end())
        << "missing planted near-duplicate " << planted;
  }
}

TEST(EditSearchTest, RingNeverHasMoreStage2CandidatesGrowingChains) {
  StringConfig config;
  config.num_records = 2000;
  config.avg_length = 24;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 4;
  config.seed = 29;
  const auto data = GenerateStrings(config);
  EditDistanceSearcher searcher(&data, 4, 2);
  Rng rng(31);
  for (int i = 0; i < 8; ++i) {
    const std::string& query = data[rng.NextBounded(data.size())];
    int64_t prev = std::numeric_limits<int64_t>::max();
    std::vector<int> baseline;
    for (int l = 1; l <= 5; ++l) {
      EditSearchStats stats;
      auto results = searcher.Search(query, EditFilter::kRing, l, &stats);
      EXPECT_LE(stats.candidates, prev);
      prev = stats.candidates;
      if (l == 1) {
        baseline = results;
      } else {
        EXPECT_EQ(results, baseline);
      }
    }
  }
}

TEST(EditSearchTest, PivotalStagesAreNested) {
  // Cand-2 (alignment filter) <= Cand-1 (pivotal prefix filter), and
  // results <= Cand-2.
  StringConfig config;
  config.num_records = 2000;
  config.avg_length = 24;
  config.duplicate_fraction = 0.4;
  config.seed = 37;
  const auto data = GenerateStrings(config);
  EditDistanceSearcher searcher(&data, 3, 2);
  Rng rng(41);
  for (int i = 0; i < 8; ++i) {
    EditSearchStats stats;
    searcher.Search(data[rng.NextBounded(data.size())], EditFilter::kPivotal,
                    1, &stats);
    EXPECT_LE(stats.candidates_stage2, stats.candidates);
    EXPECT_LE(stats.results, stats.candidates_stage2);
  }
}

TEST(EditSearchTest, TauZeroIsExactMatch) {
  const std::vector<std::string> data = {"alpha", "beta", "alpha", "gamma"};
  EditDistanceSearcher searcher(&data, 0, 2);
  const auto results = searcher.Search("alpha", EditFilter::kRing, 1);
  EXPECT_EQ(results, (std::vector<int>{0, 2}));
}

TEST(EditSearchTest, ShortQueriesAndShortData) {
  // Strings shorter than the gram scheme must still be searched correctly
  // through the length-window fallback.
  const std::vector<std::string> data = {"ab", "abc", "abcd", "xy",
                                         "abcdefghij", "b"};
  EditDistanceSearcher searcher(&data, 2, 3);
  for (const std::string query : {"ab", "abc", "abcdefghij", ""}) {
    const auto expected = BruteForceEditSearch(data, query, 2);
    EXPECT_EQ(searcher.Search(query, EditFilter::kRing, 2), expected)
        << "query=" << query;
  }
}

TEST(DatagenTest, StringsDeterministicAndShaped) {
  StringConfig config;
  config.num_records = 300;
  config.avg_length = 16;
  config.seed = 5;
  const auto a = GenerateStrings(config);
  const auto b = GenerateStrings(config);
  EXPECT_EQ(a, b);
  double total = 0;
  for (const auto& s : a) total += s.size();
  EXPECT_NEAR(total / a.size(), 16.0, 5.0);
}

TEST(DatagenTest, FixedLengthModeIsUniformAndDeterministic) {
  StringConfig config;
  config.num_records = 400;
  config.fixed_length = 12;
  config.duplicate_fraction = 0.5;
  config.max_perturb_edits = 3;
  config.seed = 7;
  const auto a = GenerateStrings(config);
  const auto b = GenerateStrings(config);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 400u);
  for (const auto& s : a) {
    ASSERT_EQ(s.size(), 12u);
    for (char c : s) {
      ASSERT_GE(c, 'a');
      ASSERT_LT(c, 'a' + 26);
    }
  }
  // The near-copy machinery must still produce close pairs in fixed mode:
  // with half the records perturbed copies, some pair sits within tau = 3.
  bool close_pair = false;
  for (size_t i = 1; i < a.size() && !close_pair; ++i) {
    for (size_t j = 0; j < i && !close_pair; ++j) {
      if (BandedEditDistance(a[i], a[j], 3) <= 3) close_pair = true;
    }
  }
  EXPECT_TRUE(close_pair);
}

TEST(DatagenTest, FixedLengthChangesOutputButNotVariableMode) {
  StringConfig variable;
  variable.num_records = 100;
  variable.seed = 11;
  StringConfig fixed = variable;
  fixed.fixed_length = 16;
  const auto a = GenerateStrings(variable);
  const auto b = GenerateStrings(fixed);
  EXPECT_NE(a, b);
  // fixed_length = 0 must reproduce the historical variable-length stream.
  size_t distinct_lengths = 0;
  std::vector<bool> seen(64, false);
  for (const auto& s : a) {
    if (s.size() < seen.size() && !seen[s.size()]) {
      seen[s.size()] = true;
      ++distinct_lengths;
    }
  }
  EXPECT_GT(distinct_lengths, 1u);
}

}  // namespace
}  // namespace pigeonring::editdist
