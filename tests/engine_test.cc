// Tests for the unified query engine: the parallel self-join must be
// byte-identical to the sequential path in all four domains (pairs and
// merged counters), SearchBatch must preserve input order, degenerate
// collections must not trip the pool, and ThreadPool must cover its range
// exactly once.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "join/self_join.h"

namespace pigeonring::engine {
namespace {

// Joins with 2 and 4 threads (small chunks, to force interleaving) and
// checks pairs and merged deterministic counters against the sequential
// run. Timing fields are excluded: wall clock is never deterministic.
template <Searcher S>
void ExpectParallelJoinMatchesSequential(S& adapter) {
  JoinStats seq_stats;
  const auto seq = SelfJoin(adapter, {}, &seq_stats);
  for (int threads : {2, 4}) {
    ExecutionOptions options;
    options.num_threads = threads;
    options.chunk = 3;
    JoinStats par_stats;
    const auto par = SelfJoin(adapter, options, &par_stats);
    EXPECT_EQ(par, seq) << "pairs diverged at " << threads << " threads";
    EXPECT_EQ(par_stats.pairs, seq_stats.pairs);
    EXPECT_EQ(par_stats.candidates, seq_stats.candidates);
  }
}

std::vector<BitVector> MakeVectors(int n, uint64_t seed) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 64;
  config.num_objects = n;
  config.num_clusters = 20;
  config.cluster_fraction = 0.6;
  config.flip_rate = 0.05;
  config.seed = seed;
  return datagen::GenerateBinaryVectors(config);
}

TEST(EngineTest, HammingParallelJoinDeterministic) {
  HammingAdapter adapter(hamming::HammingSearcher(MakeVectors(400, 71), 4),
                         8, 3);
  ExpectParallelJoinMatchesSequential(adapter);
}

TEST(EngineTest, SetParallelJoinDeterministic) {
  datagen::TokenSetConfig config;
  config.num_records = 400;
  config.avg_tokens = 12;
  config.universe_size = 900;
  config.duplicate_fraction = 0.4;
  config.seed = 73;
  setsim::SetCollection collection(datagen::GenerateTokenSets(config));
  SetAdapter adapter(setsim::PkwiseSearcher(&collection, 0.7, 5),
                     &collection, 2);
  ExpectParallelJoinMatchesSequential(adapter);
}

TEST(EngineTest, EditParallelJoinDeterministic) {
  datagen::StringConfig config;
  config.num_records = 300;
  config.avg_length = 14;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.seed = 79;
  const auto data = datagen::GenerateStrings(config);
  EditAdapter adapter(editdist::EditDistanceSearcher(&data, 2, 2), &data,
                      editdist::EditFilter::kRing, 3);
  ExpectParallelJoinMatchesSequential(adapter);
}

TEST(EngineTest, EditFastParallelJoinDeterministic) {
  datagen::StringConfig config;
  config.num_records = 300;
  config.fixed_length = 14;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.seed = 79;
  const auto data = datagen::GenerateStrings(config);
  EditFastAdapter adapter(editdist::CaseDecSearcher(&data, 2), &data, 3);
  ExpectParallelJoinMatchesSequential(adapter);
}

TEST(EngineTest, EditFastJoinMatchesPivotalJoin) {
  // The fast-path adapter and the pivotal adapter must produce the same
  // unordered pair set over the same fixed-length collection.
  datagen::StringConfig config;
  config.num_records = 250;
  config.fixed_length = 12;
  config.duplicate_fraction = 0.5;
  config.max_perturb_edits = 3;
  config.seed = 101;
  const auto data = datagen::GenerateStrings(config);
  EditAdapter pivotal(editdist::EditDistanceSearcher(&data, 3, 2), &data,
                      editdist::EditFilter::kRing, 3);
  EditFastAdapter fast(editdist::CaseDecSearcher(&data, 3), &data, 3);
  const auto expected = SelfJoin(pivotal, {});
  const auto got = SelfJoin(fast, {});
  EXPECT_EQ(got, expected);
}

TEST(EngineTest, GraphParallelJoinDeterministic) {
  datagen::GraphConfig config;
  config.num_graphs = 120;
  config.avg_vertices = 8;
  config.avg_edges = 9;
  config.vertex_labels = 8;
  config.duplicate_fraction = 0.4;
  config.max_perturb_ops = 2;
  config.seed = 83;
  const auto data = datagen::GenerateGraphs(config);
  GraphAdapter adapter(graphed::GraphSearcher(&data, 2), &data,
                       graphed::GraphFilter::kRing, 2);
  ExpectParallelJoinMatchesSequential(adapter);
}

TEST(EngineTest, LegacyWrapperHonorsNumThreads) {
  auto objects = MakeVectors(300, 89);
  hamming::HammingSearcher searcher(objects, 4);
  join::JoinStats seq_stats, par_stats;
  const auto seq = join::HammingSelfJoin(searcher, 8, 3, &seq_stats);
  const auto par = join::HammingSelfJoin(searcher, 8, 3, &par_stats, 4);
  EXPECT_EQ(par, seq);
  EXPECT_EQ(par_stats.candidates, seq_stats.candidates);
  EXPECT_EQ(par_stats.pairs, seq_stats.pairs);
}

TEST(EngineTest, JoinCandidatesExcludeSelfMatches) {
  auto objects = MakeVectors(200, 91);
  HammingAdapter adapter(hamming::HammingSearcher(objects, 4), 8, 3);
  // Expected: per-probe filter survivors, minus each probe's hit on itself.
  HammingAdapter probe_copy = adapter;
  int64_t expected = 0;
  for (int i = 0; i < adapter.size(); ++i) {
    QueryStats stats;
    const auto ids = probe_copy.Search(probe_copy.query(i), &stats);
    expected += stats.candidates;
    for (int id : ids) {
      if (id == i) --expected;
    }
  }
  JoinStats stats;
  SelfJoin(adapter, {}, &stats);
  EXPECT_EQ(stats.candidates, expected);
}

TEST(EngineTest, EmptyCollectionsJoinToNothing) {
  {
    HammingAdapter adapter(
        hamming::HammingSearcher(std::vector<BitVector>{}, 1), 2, 2);
    JoinStats stats;
    EXPECT_TRUE(SelfJoin(adapter, {}, &stats).empty());
    EXPECT_EQ(stats.pairs, 0);
    EXPECT_EQ(stats.candidates, 0);
  }
  {
    setsim::SetCollection collection{std::vector<std::vector<int>>{}};
    SetAdapter adapter(setsim::PkwiseSearcher(&collection, 0.8, 5),
                       &collection, 2);
    EXPECT_TRUE(SelfJoin(adapter).empty());
  }
  {
    const std::vector<std::string> data;
    EditAdapter adapter(editdist::EditDistanceSearcher(&data, 2, 2), &data,
                        editdist::EditFilter::kRing, 3);
    EXPECT_TRUE(SelfJoin(adapter).empty());
  }
  {
    const std::vector<graphed::Graph> data;
    GraphAdapter adapter(graphed::GraphSearcher(&data, 1), &data,
                         graphed::GraphFilter::kRing, 1);
    EXPECT_TRUE(SelfJoin(adapter).empty());
  }
}

TEST(EngineTest, SingleRecordJoinsToNothing) {
  ExecutionOptions options;
  options.num_threads = 4;
  {
    HammingAdapter adapter(
        hamming::HammingSearcher(MakeVectors(1, 97), 2), 4, 2);
    JoinStats stats;
    EXPECT_TRUE(SelfJoin(adapter, options, &stats).empty());
    EXPECT_EQ(stats.pairs, 0);
    EXPECT_EQ(stats.candidates, 0) << "the self-match must not be counted";
  }
  {
    setsim::SetCollection collection{
        std::vector<std::vector<int>>{{1, 2, 3}}};
    SetAdapter adapter(setsim::PkwiseSearcher(&collection, 0.8, 5),
                       &collection, 2);
    JoinStats stats;
    EXPECT_TRUE(SelfJoin(adapter, options, &stats).empty());
    EXPECT_EQ(stats.candidates, 0);
  }
}

// Pins operator+= to the full field set of each stats struct. The
// static_asserts fail compilation the moment a field is added, forcing
// whoever adds it to extend operator+= and the expectations here together
// (forgetting operator+= would silently drop the new counter from every
// batch/join merge).
TEST(EngineTest, QueryStatsMergeCoversEveryField) {
  static_assert(sizeof(QueryStats) == 8 * sizeof(int64_t) + 3 * sizeof(double),
                "QueryStats gained a field: update operator+= and this test");
  QueryStats a;
  a.candidates = 1;
  a.candidates_stage2 = 2;
  a.results = 3;
  a.index_hits = 4;
  a.chain_checks = 5;
  a.subiso_tests = 6;
  a.fast_path_candidates = 7;
  a.fast_path_hits = 8;
  a.filter_millis = 0.5;
  a.verify_millis = 0.25;
  a.total_millis = 0.125;
  QueryStats sum = a;
  sum += a;
  EXPECT_EQ(sum.candidates, 2);
  EXPECT_EQ(sum.candidates_stage2, 4);
  EXPECT_EQ(sum.results, 6);
  EXPECT_EQ(sum.index_hits, 8);
  EXPECT_EQ(sum.chain_checks, 10);
  EXPECT_EQ(sum.subiso_tests, 12);
  EXPECT_EQ(sum.fast_path_candidates, 14);
  EXPECT_EQ(sum.fast_path_hits, 16);
  EXPECT_EQ(sum.filter_millis, 1.0);
  EXPECT_EQ(sum.verify_millis, 0.5);
  EXPECT_EQ(sum.total_millis, 0.25);
  // Doubling every field of a distinct-valued struct reaches each field
  // exactly once, so sum != a iff no field was skipped or double-counted.
  QueryStats zero;
  zero += a;
  EXPECT_EQ(zero, a);
}

TEST(EngineTest, JoinStatsMergeCoversEveryField) {
  static_assert(sizeof(JoinStats) == 2 * sizeof(int64_t) + sizeof(double),
                "JoinStats gained a field: update operator+= and this test");
  JoinStats a;
  a.candidates = 11;
  a.pairs = 13;
  a.total_millis = 0.75;
  JoinStats sum = a;
  sum += a;
  EXPECT_EQ(sum.candidates, 22);
  EXPECT_EQ(sum.pairs, 26);
  EXPECT_EQ(sum.total_millis, 1.5);
  JoinStats zero;
  zero += a;
  EXPECT_EQ(zero, a);
}

TEST(EngineTest, SearchBatchPreservesInputOrder) {
  auto objects = MakeVectors(300, 101);
  std::vector<BitVector> queries(objects.begin(), objects.begin() + 50);
  HammingAdapter adapter(hamming::HammingSearcher(std::move(objects), 4), 10,
                         3);
  QueryStats seq_stats;
  const auto seq = SearchBatch(adapter, queries, {}, &seq_stats);
  ASSERT_EQ(seq.size(), queries.size());

  ExecutionOptions options;
  options.num_threads = 4;
  options.chunk = 3;
  QueryStats par_stats;
  const auto par = SearchBatch(adapter, queries, options, &par_stats);
  EXPECT_EQ(par, seq);
  EXPECT_EQ(par_stats.candidates, seq_stats.candidates);
  EXPECT_EQ(par_stats.results, seq_stats.results);
  EXPECT_EQ(par_stats.index_hits, seq_stats.index_hits);

  // Each slot must be that query's own answer, not just some permutation.
  HammingAdapter single = adapter;
  for (size_t i = 0; i < queries.size(); i += 7) {
    EXPECT_EQ(par[i], single.Search(queries[i], nullptr)) << "query " << i;
  }
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  std::atomic<bool> bad_thread{false};
  pool.ParallelFor(kN, 7, [&](int thread, int64_t begin, int64_t end) {
    if (thread < 0 || thread >= 4) bad_thread = true;
    for (int64_t i = begin; i < end; ++i) counts[i]++;
  });
  EXPECT_FALSE(bad_thread);
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int calls = 0;
  pool.ParallelFor(10, 4, [&](int thread, int64_t begin, int64_t end) {
    EXPECT_EQ(thread, 0);
    calls += static_cast<int>(end - begin);
  });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(3);
  pool.ParallelFor(0, 8, [&](int, int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPoolTest, ReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, 9, [&](int, int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPoolTest, EnsureThreadsGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.EnsureThreads(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.EnsureThreads(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 5, [&](int, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, MaxThreadsCapsTheLoopWidth) {
  ThreadPool pool(6);
  constexpr int kWidth = 2;
  std::atomic<bool> bad_thread{false};
  std::vector<std::atomic<int>> counts(500);
  pool.ParallelFor(500, 3, kWidth, [&](int thread, int64_t begin,
                                       int64_t end) {
    if (thread < 0 || thread >= kWidth) bad_thread = true;
    for (int64_t i = begin; i < end; ++i) counts[i]++;
  });
  EXPECT_FALSE(bad_thread) << "thread index escaped the width cap";
  for (int i = 0; i < 500; ++i) ASSERT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeCorrectly) {
  // One shared pool, several caller threads each running many loops: every
  // loop must still cover exactly its own range (the service pattern —
  // sessions share one executor).
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kLoops = 25;
  std::vector<std::thread> callers;
  std::vector<std::atomic<int64_t>> sums(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      for (int loop = 0; loop < kLoops; ++loop) {
        std::atomic<int64_t> sum{0};
        pool.ParallelFor(200, 7, [&](int, int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) sum += i;
        });
        if (sum.load() != 199 * 200 / 2) sums[c] = -1;
      }
      if (sums[c].load() != -1) sums[c] = 199 * 200 / 2;
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), 199 * 200 / 2) << "caller " << c;
  }
}

TEST(ExecutorTest, SubmitRunsEveryJobAndFuturesResolve) {
  std::vector<std::future<int>> futures;
  std::atomic<int> ran{0};
  {
    Executor executor(2);
    for (int i = 0; i < 16; ++i) {
      auto promise = std::make_shared<std::promise<int>>();
      futures.push_back(promise->get_future());
      executor.Submit([promise, &ran, i] {
        ++ran;
        promise->set_value(i * i);
      });
    }
    // Harvest in reverse: completion order must not matter.
    for (int i = 15; i >= 0; --i) {
      EXPECT_EQ(futures[i].get(), i * i);
    }
  }  // the destructor drains anything still queued
  EXPECT_EQ(ran.load(), 16);
}

TEST(ExecutorTest, ContextGrowsThePoolOnDemand) {
  Executor executor(1);
  EXPECT_EQ(executor.num_threads(), 1);
  ExecutionOptions options;
  options.num_threads = 3;
  ExecutionContext context(executor, options);
  EXPECT_EQ(context.num_threads(), 3);
  EXPECT_EQ(executor.num_threads(), 3);
  // A narrower follow-up call keeps the grown pool but a narrow loop.
  options.num_threads = 2;
  ExecutionContext narrow(executor, options);
  EXPECT_EQ(narrow.num_threads(), 2);
  EXPECT_EQ(executor.num_threads(), 3);
}

TEST(ExecutorTest, DriversReuseThePersistentExecutorAcrossCalls) {
  const auto objects = MakeVectors(200, 57);
  HammingAdapter adapter(hamming::HammingSearcher(objects), 8, 3);
  std::vector<BitVector> queries(objects.begin(), objects.begin() + 30);

  const auto expected = SearchBatch(adapter, queries);
  Executor executor(2);
  ExecutionOptions options;
  options.num_threads = 2;
  options.chunk = 4;
  for (int call = 0; call < 5; ++call) {
    ExecutionContext context(executor, options);
    EXPECT_EQ(SearchBatch(adapter, queries, context), expected);
  }
  EXPECT_EQ(executor.num_threads(), 2) << "no pool rebuild between calls";
  ExecutionContext context(executor, options);
  EXPECT_EQ(SelfJoin(adapter, context),
            SelfJoin(adapter, ExecutionOptions{}));
}

}  // namespace
}  // namespace pigeonring::engine
