// Unit, integration, and property tests for graph edit distance search
// (graph type, exact GED, partitioning, subgraph isomorphism, deletion
// neighborhood, Pars baseline, Ring upgrade).

#include "graphed/pars.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/graphs.h"
#include "graphed/ged.h"
#include "graphed/subiso.h"

namespace pigeonring::graphed {
namespace {

using datagen::GenerateGraphs;
using datagen::GraphConfig;

Graph Triangle(int l0, int l1, int l2, int e01, int e12, int e02) {
  Graph g({l0, l1, l2});
  g.AddEdge(0, 1, e01);
  g.AddEdge(1, 2, e12);
  g.AddEdge(0, 2, e02);
  return g;
}

Graph RandomGraph(Rng& rng, int max_vertices, int vlabels, int elabels) {
  const int n = 1 + static_cast<int>(rng.NextBounded(max_vertices));
  std::vector<int> labels(n);
  for (int& l : labels) l = static_cast<int>(rng.NextBounded(vlabels));
  Graph g(std::move(labels));
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(0.3)) {
        g.AddEdge(u, v, static_cast<int>(rng.NextBounded(elabels)));
      }
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Graph basics.
// ---------------------------------------------------------------------------

TEST(GraphTest, EdgesAndNeighbors) {
  Graph g({1, 2, 3});
  g.AddEdge(0, 1, 7);
  g.AddEdge(2, 1, 8);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.EdgeLabel(0, 1), 7);
  EXPECT_EQ(g.EdgeLabel(1, 0), 7);
  EXPECT_EQ(g.EdgeLabel(1, 2), 8);
  EXPECT_EQ(g.EdgeLabel(0, 2), -1);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(0), 1);
}

// ---------------------------------------------------------------------------
// Exact GED.
// ---------------------------------------------------------------------------

TEST(GedTest, IdenticalGraphsHaveZeroDistance) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = RandomGraph(rng, 8, 4, 2);
    EXPECT_EQ(GraphEditDistanceWithin(g, g, 3), 0);
  }
}

TEST(GedTest, KnownSmallCases) {
  const Graph a = Triangle(1, 2, 3, 0, 0, 0);
  // One vertex relabel.
  EXPECT_EQ(GraphEditDistanceWithin(a, Triangle(1, 2, 9, 0, 0, 0), 3), 1);
  // One edge relabel.
  EXPECT_EQ(GraphEditDistanceWithin(a, Triangle(1, 2, 3, 0, 0, 5), 3), 1);
  // Remove one edge: path vs triangle.
  Graph path({1, 2, 3});
  path.AddEdge(0, 1, 0);
  path.AddEdge(1, 2, 0);
  EXPECT_EQ(GraphEditDistanceWithin(a, path, 3), 1);
  // Empty vs single vertex: one insertion.
  EXPECT_EQ(GraphEditDistanceWithin(Graph(std::vector<int>{}), Graph({5}), 2),
            1);
  // Deleting a degree-2 vertex costs 1 + 2 (edges first).
  Graph two({1, 2});
  two.AddEdge(0, 1, 0);
  EXPECT_EQ(GraphEditDistanceWithin(a, two, 4),
            3);  // delete vertex 3's two edges + the vertex... relabels may
                 // do better; check against an explicit bound below.
}

TEST(GedTest, SymmetricOnRandomPairs) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph a = RandomGraph(rng, 5, 3, 2);
    const Graph b = RandomGraph(rng, 5, 3, 2);
    const int tau = 6;
    const int ab = GraphEditDistanceWithin(a, b, tau);
    const int ba = GraphEditDistanceWithin(b, a, tau);
    if (ab <= tau || ba <= tau) {
      EXPECT_EQ(ab, ba) << "GED must be symmetric";
    }
  }
}

TEST(GedTest, PerturbationBoundsDistance) {
  // k edit operations applied to a graph put the result within GED k.
  Rng rng(11);
  GraphConfig config;
  config.vertex_labels = 5;
  config.edge_labels = 2;
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = RandomGraph(rng, 6, 5, 2);
    if (g.num_vertices() < 2) continue;
    // One relabel = distance <= 1.
    Graph relabeled = g;
    relabeled.set_vertex_label(0, 99);
    EXPECT_LE(GraphEditDistanceWithin(g, relabeled, 2), 1);
    // One pendant vertex addition = distance <= 2 (vertex + edge).
    Graph extended = g;
    const int v = extended.AddVertex(3);
    extended.AddEdge(0, v, 1);
    EXPECT_LE(GraphEditDistanceWithin(g, extended, 3), 2);
  }
}

TEST(GedTest, LabelLowerBoundIsAdmissible) {
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph a = RandomGraph(rng, 5, 3, 2);
    const Graph b = RandomGraph(rng, 5, 3, 2);
    const int tau = 8;
    const int exact = GraphEditDistanceWithin(a, b, tau);
    if (exact <= tau) {
      EXPECT_LE(LabelLowerBound(a, b), exact);
    }
  }
}

TEST(GedTest, ThresholdAbortNeverUnderreports) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph a = RandomGraph(rng, 5, 3, 2);
    const Graph b = RandomGraph(rng, 5, 3, 2);
    const int exact = GraphEditDistanceWithin(a, b, 10);
    for (int tau = 0; tau <= 6; ++tau) {
      const int banded = GraphEditDistanceWithin(a, b, tau);
      if (exact <= tau) {
        EXPECT_EQ(banded, exact);
      } else {
        EXPECT_GT(banded, tau);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------------

TEST(PartitionTest, PartsCoverVerticesAndEdgesExactlyOnce) {
  Rng rng(19);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = RandomGraph(rng, 12, 4, 3);
    for (int m : {1, 2, 3, 5}) {
      if (m > std::max(1, g.num_vertices())) continue;
      const std::vector<Part> parts = PartitionGraph(g, m, trial);
      EXPECT_EQ(static_cast<int>(parts.size()), m);
      int vertices = 0, internal_edges = 0, half_edges = 0;
      for (const Part& part : parts) {
        vertices += part.graph.num_vertices();
        internal_edges += part.graph.num_edges();
        half_edges += static_cast<int>(part.half_edges.size());
      }
      EXPECT_EQ(vertices, g.num_vertices());
      // Every edge is either internal to one part or one half-edge.
      EXPECT_EQ(internal_edges + half_edges, g.num_edges());
    }
  }
}

TEST(PartitionTest, BalancedSizes) {
  Rng rng(23);
  const Graph g = RandomGraph(rng, 12, 4, 2);
  const std::vector<Part> parts = PartitionGraph(g, 4, 1);
  int min_size = g.num_vertices(), max_size = 0;
  for (const Part& part : parts) {
    min_size = std::min(min_size, part.graph.num_vertices());
    max_size = std::max(max_size, part.graph.num_vertices());
  }
  EXPECT_LE(max_size - min_size, 1);
}

// ---------------------------------------------------------------------------
// Subgraph isomorphism.
// ---------------------------------------------------------------------------

TEST(SubIsoTest, PartOfGraphIsIsomorphicToIt) {
  Rng rng(29);
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = RandomGraph(rng, 10, 4, 3);
    if (g.num_vertices() == 0) continue;
    const std::vector<Part> parts =
        PartitionGraph(g, std::min(3, g.num_vertices()), trial);
    for (const Part& part : parts) {
      EXPECT_TRUE(PartLabelsContained(part, g));
      EXPECT_TRUE(PartSubgraphIsomorphic(part, g))
          << "a part must embed into its own graph";
    }
  }
}

TEST(SubIsoTest, LabelMismatchFails) {
  Part part;
  part.graph = Graph({1, 2});
  part.graph.AddEdge(0, 1, 0);
  Graph q({1, 3});
  q.AddEdge(0, 1, 0);
  EXPECT_FALSE(PartSubgraphIsomorphic(part, q));
  // Wildcard rescues the mismatch.
  part.graph.set_vertex_label(1, Graph::kWildcardLabel);
  EXPECT_TRUE(PartSubgraphIsomorphic(part, q));
}

TEST(SubIsoTest, EdgeLabelMismatchFails) {
  Part part;
  part.graph = Graph({1, 2});
  part.graph.AddEdge(0, 1, 5);
  Graph q({1, 2});
  q.AddEdge(0, 1, 6);
  EXPECT_FALSE(PartSubgraphIsomorphic(part, q));
}

TEST(SubIsoTest, HalfEdgesRequireIncidentLabels) {
  Part part;
  part.graph = Graph({1});
  part.half_edges.emplace_back(0, 7);
  Graph q_without({1, 2});
  q_without.AddEdge(0, 1, 3);
  EXPECT_FALSE(PartSubgraphIsomorphic(part, q_without));
  Graph q_with({1, 2});
  q_with.AddEdge(0, 1, 7);
  EXPECT_TRUE(PartSubgraphIsomorphic(part, q_with));
}

TEST(SubIsoTest, TwoHalfEdgesMayShareOneQueryEdge) {
  // Soundness of the relaxation: two half-edges with the same label on
  // different part vertices are satisfiable by the two endpoints of a
  // single query edge.
  Part part;
  part.graph = Graph({1, 1});
  part.half_edges.emplace_back(0, 7);
  part.half_edges.emplace_back(1, 7);
  Graph q({1, 1});
  q.AddEdge(0, 1, 7);
  EXPECT_TRUE(PartLabelsContained(part, q));
  EXPECT_TRUE(PartSubgraphIsomorphic(part, q));
}

// ---------------------------------------------------------------------------
// Deletion neighborhood.
// ---------------------------------------------------------------------------

TEST(DeletionNeighborhoodTest, ZeroOpsEqualsSubIso) {
  Rng rng(31);
  int64_t tests = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = RandomGraph(rng, 8, 3, 2);
    const Graph q = RandomGraph(rng, 8, 3, 2);
    if (g.num_vertices() == 0) continue;
    const std::vector<Part> parts = PartitionGraph(g, 2, trial);
    for (const Part& part : parts) {
      const int r = DeletionNeighborhoodBound(part, q, 0, &tests);
      EXPECT_EQ(r == 0, PartSubgraphIsomorphic(part, q));
    }
  }
}

TEST(DeletionNeighborhoodTest, BoundLowerBoundsPartDistance) {
  // r <= min ged(part, subgraph of q): verified indirectly — if the true
  // data graph is within tau of the query, the per-part bounds summed along
  // any chain may not exceed the viability budget (this is exactly the
  // completeness property the searcher test below exercises end to end).
  // Here: deleting one edge from a part makes it reachable in <= 1 op.
  Rng rng(37);
  int64_t tests = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = RandomGraph(rng, 8, 3, 2);
    if (g.num_edges() == 0) continue;
    const std::vector<Part> parts = PartitionGraph(g, 1, trial);
    const Part& whole = parts[0];
    // Remove one edge from the query side.
    Graph q(g.vertex_labels());
    for (int i = 1; i < g.num_edges(); ++i) {
      const Edge& e = g.edges()[i];
      q.AddEdge(e.u, e.v, e.label);
    }
    const int r = DeletionNeighborhoodBound(whole, q, 2, &tests);
    EXPECT_LE(r, 1);
  }
}

// ---------------------------------------------------------------------------
// End-to-end search correctness.
// ---------------------------------------------------------------------------

struct GraphCase {
  int tau;
  GraphFilter filter;
  int chain_length;
  int vertex_labels;
};

class GraphSearchCorrectness : public ::testing::TestWithParam<GraphCase> {};

TEST_P(GraphSearchCorrectness, MatchesBruteForce) {
  const auto [tau, filter, chain_length, vertex_labels] = GetParam();
  GraphConfig config;
  config.num_graphs = 250;
  config.avg_vertices = 9;
  config.avg_edges = 11;
  config.vertex_labels = vertex_labels;
  config.edge_labels = 3;
  config.duplicate_fraction = 0.4;
  config.max_perturb_ops = std::max(1, tau);
  config.seed = 900 + tau + vertex_labels;
  const auto data = GenerateGraphs(config);
  GraphSearcher searcher(&data, tau);
  Rng rng(41);
  for (int i = 0; i < 8; ++i) {
    const Graph& query = data[rng.NextBounded(data.size())];
    const auto expected = BruteForceGedSearch(data, query, tau);
    EXPECT_EQ(searcher.Search(query, filter, chain_length), expected)
        << "tau=" << tau << " l=" << chain_length;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphSearchCorrectness,
    ::testing::Values(GraphCase{1, GraphFilter::kPars, 1, 10},
                      GraphCase{2, GraphFilter::kPars, 1, 10},
                      GraphCase{2, GraphFilter::kRing, 2, 10},
                      GraphCase{3, GraphFilter::kRing, 2, 10},
                      GraphCase{3, GraphFilter::kRing, 3, 10},
                      GraphCase{4, GraphFilter::kRing, 3, 10},
                      GraphCase{3, GraphFilter::kRing, 3, 3},
                      GraphCase{0, GraphFilter::kRing, 1, 10}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return "tau" + std::to_string(info.param.tau) +
             (info.param.filter == GraphFilter::kPars ? "_pars" : "_ring") +
             "_l" + std::to_string(info.param.chain_length) + "_vl" +
             std::to_string(info.param.vertex_labels);
    });

TEST(GraphSearchTest, RingCandidatesSubsetOfPars) {
  GraphConfig config;
  config.num_graphs = 400;
  config.avg_vertices = 10;
  config.avg_edges = 12;
  config.vertex_labels = 8;
  config.duplicate_fraction = 0.4;
  config.seed = 43;
  const auto data = GenerateGraphs(config);
  const int tau = 3;
  GraphSearcher searcher(&data, tau);
  Rng rng(47);
  for (int i = 0; i < 6; ++i) {
    const Graph& query = data[rng.NextBounded(data.size())];
    GraphSearchStats pars_stats, ring_stats;
    const auto pars_results =
        searcher.Search(query, GraphFilter::kPars, 1, &pars_stats);
    const auto ring_results =
        searcher.Search(query, GraphFilter::kRing, tau, &ring_stats);
    EXPECT_EQ(pars_results, ring_results);
    EXPECT_LE(ring_stats.candidates, pars_stats.candidates);
    EXPECT_GE(ring_stats.candidates, ring_stats.results);
  }
}

TEST(GraphSearchTest, QueryFindsItself) {
  GraphConfig config;
  config.num_graphs = 100;
  config.seed = 53;
  const auto data = GenerateGraphs(config);
  GraphSearcher searcher(&data, 2);
  for (int id : {0, 50, 99}) {
    const auto results = searcher.Search(data[id], GraphFilter::kRing, 2);
    EXPECT_TRUE(std::find(results.begin(), results.end(), id) !=
                results.end());
  }
}

TEST(DatagenTest, GraphsDeterministicAndShaped) {
  GraphConfig config;
  config.num_graphs = 200;
  config.seed = 59;
  const auto a = GenerateGraphs(config);
  const auto b = GenerateGraphs(config);
  ASSERT_EQ(a.size(), b.size());
  double vertices = 0, edges = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].vertex_labels(), b[i].vertex_labels());
    EXPECT_EQ(a[i].edges().size(), b[i].edges().size());
    vertices += a[i].num_vertices();
    edges += a[i].num_edges();
  }
  EXPECT_NEAR(vertices / a.size(), config.avg_vertices, 4.0);
  EXPECT_GT(edges / a.size(), config.avg_vertices - 4.0);
}

}  // namespace
}  // namespace pigeonring::graphed
