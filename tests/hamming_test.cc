// Unit, integration, and property tests for Hamming distance search
// (partition, index, GPH baseline, Ring upgrade).

#include "hamming/search.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/binary_vectors.h"
#include "hamming/index.h"
#include "hamming/partition.h"

namespace pigeonring::hamming {
namespace {

using datagen::BinaryVectorConfig;
using datagen::GenerateBinaryVectors;

std::vector<BitVector> RandomVectors(int n, int d, uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    BitVector v(d);
    for (int j = 0; j < d; ++j) v.Set(j, rng.NextBernoulli(0.5));
    out.push_back(std::move(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Partition.
// ---------------------------------------------------------------------------

TEST(PartitionTest, EquiWidthCoversAllDimensionsDisjointly) {
  for (int d : {16, 63, 64, 100, 256}) {
    for (int m : {1, 3, 5, 16}) {
      if (m > d || (d + m - 1) / m > 64) continue;
      const Partition p = Partition::EquiWidth(d, m);
      EXPECT_EQ(p.num_parts(), m);
      EXPECT_EQ(p.begin(0), 0);
      EXPECT_EQ(p.end(m - 1), d);
      int total = 0;
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(p.begin(i), i == 0 ? 0 : p.end(i - 1));
        EXPECT_GE(p.width(i), d / m);
        EXPECT_LE(p.width(i), (d + m - 1) / m);
        total += p.width(i);
      }
      EXPECT_EQ(total, d);
    }
  }
}

// ---------------------------------------------------------------------------
// Key enumeration and index probing.
// ---------------------------------------------------------------------------

TEST(IndexTest, ForEachKeyAtRadiusEnumeratesExactlyTheSphere) {
  const int width = 10;
  const uint64_t base = 0b1011001110;
  for (int radius = 0; radius <= 4; ++radius) {
    std::set<uint64_t> seen;
    ForEachKeyAtRadius(base, width, radius, [&](uint64_t key) {
      EXPECT_EQ(Popcount64(key ^ base), radius);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate key";
    });
    // |sphere| = C(width, radius).
    long long expect = 1;
    for (int i = 0; i < radius; ++i) expect = expect * (width - i) / (i + 1);
    EXPECT_EQ(static_cast<long long>(seen.size()), expect);
  }
}

TEST(IndexTest, ProbeAtRadiusFindsExactlyMatchingParts) {
  const int d = 64, m = 4;
  auto objects = RandomVectors(200, d, 3);
  const Partition partition = Partition::EquiWidth(d, m);
  PartitionIndex index(objects, partition);
  const BitVector query = objects[7];
  for (int part = 0; part < m; ++part) {
    for (int radius = 0; radius <= 3; ++radius) {
      std::set<int> probed;
      index.ProbeAtRadius(query, part, radius, [&](int id, int dist) {
        EXPECT_EQ(dist, radius);
        probed.insert(id);
      });
      std::set<int> expected;
      for (int id = 0; id < static_cast<int>(objects.size()); ++id) {
        if (objects[id].PartDistance(query, partition.begin(part),
                                     partition.end(part)) == radius) {
          expected.insert(id);
        }
      }
      EXPECT_EQ(probed, expected) << "part=" << part << " r=" << radius;
    }
  }
}

TEST(IndexTest, CountAtRadiusMatchesProbe) {
  const int d = 64, m = 4;
  auto objects = RandomVectors(300, d, 5);
  PartitionIndex index(objects, Partition::EquiWidth(d, m));
  const BitVector query = objects[0];
  for (int part = 0; part < m; ++part) {
    for (int radius = 0; radius <= 4; ++radius) {
      int64_t probed = 0;
      index.ProbeAtRadius(query, part, radius,
                          [&](int, int) { ++probed; });
      EXPECT_EQ(index.CountAtRadius(query, part, radius), probed);
    }
  }
}

// ---------------------------------------------------------------------------
// Threshold allocation.
// ---------------------------------------------------------------------------

TEST(AllocationTest, ThresholdsSumToIntegerReductionBudget) {
  auto objects = RandomVectors(500, 128, 7);
  HammingSearcher searcher(objects, 8);
  const BitVector query = objects[3];
  for (int tau : {4, 10, 16, 40}) {
    for (auto mode : {AllocationMode::kUniform, AllocationMode::kCostModel}) {
      const std::vector<int> t =
          searcher.AllocateThresholds(query, tau, mode);
      int sum = 0;
      for (int v : t) {
        sum += v;
        EXPECT_GE(v, -1);
      }
      EXPECT_EQ(sum, tau - searcher.num_parts() + 1)
          << "tau=" << tau
          << " mode=" << (mode == AllocationMode::kUniform ? "uni" : "cost");
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end search correctness.
// ---------------------------------------------------------------------------

struct HammingCase {
  int d;
  int m;
  int tau;
  int l;
  AllocationMode mode;
};

class HammingSearchCorrectness
    : public ::testing::TestWithParam<HammingCase> {};

TEST_P(HammingSearchCorrectness, MatchesBruteForce) {
  const auto [d, m, tau, l, mode] = GetParam();
  BinaryVectorConfig config;
  config.dimensions = d;
  config.num_objects = 2000;
  config.num_clusters = 50;
  config.cluster_fraction = 0.6;
  config.flip_rate = 0.06;
  config.seed = 11;
  auto objects = GenerateBinaryVectors(config);
  HammingSearcher searcher(objects, m);
  auto queries = datagen::SampleQueries(objects, 10, 13);
  for (const auto& q : queries) {
    const auto expected = BruteForceSearch(objects, q, tau);
    const auto got = searcher.Search(q, tau, l, mode);
    EXPECT_EQ(got, expected) << "d=" << d << " m=" << m << " tau=" << tau
                             << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HammingSearchCorrectness,
    ::testing::Values(
        HammingCase{64, 4, 6, 1, AllocationMode::kCostModel},
        HammingCase{64, 4, 6, 2, AllocationMode::kCostModel},
        HammingCase{64, 4, 6, 4, AllocationMode::kCostModel},
        HammingCase{64, 4, 2, 3, AllocationMode::kUniform},
        HammingCase{128, 8, 16, 1, AllocationMode::kCostModel},
        HammingCase{128, 8, 16, 5, AllocationMode::kCostModel},
        HammingCase{128, 8, 16, 8, AllocationMode::kUniform},
        HammingCase{128, 8, 3, 4, AllocationMode::kCostModel},
        HammingCase{256, 16, 32, 6, AllocationMode::kCostModel},
        HammingCase{256, 16, 48, 3, AllocationMode::kUniform}),
    [](const ::testing::TestParamInfo<HammingCase>& info) {
      return "d" + std::to_string(info.param.d) + "_m" +
             std::to_string(info.param.m) + "_tau" +
             std::to_string(info.param.tau) + "_l" +
             std::to_string(info.param.l) +
             (info.param.mode == AllocationMode::kUniform ? "_uni" : "_cost");
    });

TEST(HammingSearchTest, RingCandidatesAreSubsetOfGphCandidates) {
  // Lemma 4 end-to-end: candidate counts are non-increasing in l, results
  // identical.
  BinaryVectorConfig config;
  config.num_objects = 3000;
  config.dimensions = 128;
  config.num_clusters = 60;
  config.seed = 17;
  auto objects = GenerateBinaryVectors(config);
  HammingSearcher searcher(objects, 8);
  auto queries = datagen::SampleQueries(objects, 5, 19);
  for (const auto& q : queries) {
    int64_t prev_candidates = std::numeric_limits<int64_t>::max();
    std::vector<int> first_results;
    for (int l = 1; l <= 8; ++l) {
      SearchStats stats;
      auto results = searcher.Search(q, 24, l, AllocationMode::kCostModel,
                                     &stats);
      EXPECT_LE(stats.candidates, prev_candidates) << "l=" << l;
      EXPECT_GE(stats.candidates, stats.results);
      prev_candidates = stats.candidates;
      if (l == 1) {
        first_results = results;
      } else {
        EXPECT_EQ(results, first_results);
      }
    }
  }
}

TEST(HammingSearchTest, FullChainLengthYieldsCandidatesEqualResults) {
  // With l = m and a tight instance, candidates == results (§3).
  auto objects = RandomVectors(2000, 64, 23);
  HammingSearcher searcher(objects, 4);
  auto queries = datagen::SampleQueries(objects, 5, 29);
  for (const auto& q : queries) {
    SearchStats stats;
    searcher.Search(q, 10, 4, AllocationMode::kCostModel, &stats);
    EXPECT_EQ(stats.candidates, stats.results);
  }
}

TEST(HammingSearchTest, QueryIsItsOwnResultAtTauZero) {
  auto objects = RandomVectors(500, 64, 31);
  HammingSearcher searcher(objects, 4);
  for (int id : {0, 17, 499}) {
    auto results = searcher.Search(objects[id], 0, 2);
    EXPECT_FALSE(results.empty());
    bool found = false;
    for (int r : results) {
      EXPECT_EQ(objects[r].HammingDistance(objects[id]), 0);
      found |= (r == id);
    }
    EXPECT_TRUE(found);
  }
}

TEST(HammingSearchTest, MaxThresholdReturnsEverything) {
  auto objects = RandomVectors(300, 64, 37);
  HammingSearcher searcher(objects, 4);
  auto results = searcher.Search(objects[0], 64, 2);
  EXPECT_EQ(results.size(), objects.size());
}

TEST(HammingSearchTest, StatsTimingFieldsArePopulated) {
  auto objects = RandomVectors(1000, 128, 41);
  HammingSearcher searcher(objects, 8);
  SearchStats stats;
  searcher.Search(objects[1], 20, 4, AllocationMode::kCostModel, &stats);
  EXPECT_GE(stats.total_millis, 0.0);
  EXPECT_GE(stats.filter_millis, 0.0);
  EXPECT_GE(stats.verify_millis, 0.0);
  EXPECT_GT(stats.index_hits, 0);
}

TEST(DatagenTest, BinaryVectorsDeterministicInSeed) {
  BinaryVectorConfig config;
  config.num_objects = 100;
  config.dimensions = 64;
  config.num_clusters = 5;
  auto a = GenerateBinaryVectors(config);
  auto b = GenerateBinaryVectors(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  config.seed = 2;
  auto c = GenerateBinaryVectors(config);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) same += (a[i] == c[i]) ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(DatagenTest, ClustersCreateClosePairs) {
  BinaryVectorConfig config;
  config.num_objects = 2000;
  config.dimensions = 256;
  config.num_clusters = 40;
  config.cluster_fraction = 0.7;
  config.flip_rate = 0.03;
  config.seed = 43;
  auto objects = GenerateBinaryVectors(config);
  // Some pair must be within a quarter of the mean random distance (128).
  int close_pairs = 0;
  for (int i = 0; i < 200; ++i) {
    for (int j = i + 1; j < 200; ++j) {
      if (objects[i].HammingDistance(objects[j]) <= 48) ++close_pairs;
    }
  }
  EXPECT_GT(close_pairs, 0);
}

}  // namespace
}  // namespace pigeonring::hamming
