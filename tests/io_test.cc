// Round-trip and error-handling tests for dataset serialization.

#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"

namespace pigeonring::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pigeonring_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, BitVectorsRoundTrip) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 96;
  config.num_objects = 50;
  config.num_clusters = 5;
  config.seed = 3;
  const auto vectors = datagen::GenerateBinaryVectors(config);
  ASSERT_TRUE(SaveBitVectors(Path("v.txt"), vectors).ok());
  auto loaded = LoadBitVectors(Path("v.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), vectors.size());
  for (size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_TRUE((*loaded)[i] == vectors[i]);
  }
}

TEST_F(IoTest, BitVectorsRejectBadInput) {
  WriteFile("bad1.txt", "not_a_number\n01\n");
  EXPECT_FALSE(LoadBitVectors(Path("bad1.txt")).ok());
  WriteFile("bad2.txt", "4\n0101\n011\n");  // wrong width
  EXPECT_FALSE(LoadBitVectors(Path("bad2.txt")).ok());
  WriteFile("bad3.txt", "4\n01x1\n");  // bad character
  EXPECT_FALSE(LoadBitVectors(Path("bad3.txt")).ok());
  EXPECT_FALSE(LoadBitVectors(Path("missing.txt")).ok());
}

TEST_F(IoTest, TokenSetsRoundTrip) {
  datagen::TokenSetConfig config;
  config.num_records = 60;
  config.avg_tokens = 8;
  config.universe_size = 300;
  config.seed = 5;
  auto sets = datagen::GenerateTokenSets(config);
  sets.push_back({});  // empty set must survive the round trip
  ASSERT_TRUE(SaveTokenSets(Path("s.txt"), sets).ok());
  auto loaded = LoadTokenSets(Path("s.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, sets);
}

TEST_F(IoTest, TokenSetsRejectBadInput) {
  WriteFile("bad.txt", "1 2 three\n");
  EXPECT_FALSE(LoadTokenSets(Path("bad.txt")).ok());
  WriteFile("neg.txt", "1 -2 3\n");
  EXPECT_FALSE(LoadTokenSets(Path("neg.txt")).ok());
}

TEST_F(IoTest, TokenSetsRejectOutOfRangeTokens) {
  // > INT_MAX must not be silently truncated by the int narrowing.
  WriteFile("wide.txt", "1 3000000000\n");
  EXPECT_FALSE(LoadTokenSets(Path("wide.txt")).ok());
  // Overflows long long *at end of line*: stream extraction sets eofbit
  // together with failbit here, which used to slip past the error check
  // and load as an empty set.
  WriteFile("huge.txt", "99999999999999999999999999999999\n");
  auto huge = LoadTokenSets(Path("huge.txt"));
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, BitVectorsRejectTruncatedHeader) {
  WriteFile("empty.txt", "");  // no dimensionality header at all
  EXPECT_FALSE(LoadBitVectors(Path("empty.txt")).ok());
  WriteFile("negdim.txt", "-4\n0101\n");
  EXPECT_FALSE(LoadBitVectors(Path("negdim.txt")).ok());
}

TEST_F(IoTest, StringsRoundTrip) {
  datagen::StringConfig config;
  config.num_records = 40;
  config.avg_length = 12;
  config.seed = 7;
  auto strings = datagen::GenerateStrings(config);
  strings.push_back("");  // empty line round-trips
  ASSERT_TRUE(SaveStrings(Path("t.txt"), strings).ok());
  auto loaded = LoadStrings(Path("t.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, strings);
}

TEST_F(IoTest, StringsRejectEmbeddedNewline) {
  EXPECT_FALSE(SaveStrings(Path("t.txt"), {"ok", "bad\nline"}).ok());
}

TEST_F(IoTest, GraphsRoundTrip) {
  datagen::GraphConfig config;
  config.num_graphs = 30;
  config.avg_vertices = 8;
  config.avg_edges = 9;
  config.seed = 9;
  const auto graphs = datagen::GenerateGraphs(config);
  ASSERT_TRUE(SaveGraphs(Path("g.txt"), graphs).ok());
  auto loaded = LoadGraphs(Path("g.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), graphs.size());
  for (size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ((*loaded)[i].vertex_labels(), graphs[i].vertex_labels());
    EXPECT_EQ((*loaded)[i].edges(), graphs[i].edges());
  }
}

TEST_F(IoTest, GraphsRejectBadInput) {
  WriteFile("bad1.txt", "g 2 1\nv 1 2\ne 0 5 0\n");  // out-of-range vertex
  EXPECT_FALSE(LoadGraphs(Path("bad1.txt")).ok());
  WriteFile("bad2.txt", "g 2 1\nv 1\ne 0 1 0\n");  // missing label
  EXPECT_FALSE(LoadGraphs(Path("bad2.txt")).ok());
  WriteFile("bad3.txt", "h 2 1\n");  // wrong tag
  EXPECT_FALSE(LoadGraphs(Path("bad3.txt")).ok());
  WriteFile("bad4.txt", "g 2 2\nv 1 2\ne 0 1 0\ne 0 1 0\n");  // dup edge
  EXPECT_FALSE(LoadGraphs(Path("bad4.txt")).ok());
}

TEST_F(IoTest, GraphsRejectTruncatedFile) {
  WriteFile("trunc1.txt", "g 2 1\nv 1 2\n");  // edge line missing
  auto trunc1 = LoadGraphs(Path("trunc1.txt"));
  ASSERT_FALSE(trunc1.ok());
  EXPECT_EQ(trunc1.status().code(), StatusCode::kInvalidArgument);
  WriteFile("trunc2.txt", "g 2 1\n");  // vertex label line missing
  EXPECT_FALSE(LoadGraphs(Path("trunc2.txt")).ok());
  WriteFile("trunc3.txt", "g 3 2\nv 1 2 3\ne 0 1 0\n");  // one of two edges
  EXPECT_FALSE(LoadGraphs(Path("trunc3.txt")).ok());
  // Errors carry file and line context for the operator.
  EXPECT_NE(trunc1.status().message().find("trunc1.txt:3"),
            std::string::npos)
      << trunc1.status().ToString();
}

TEST_F(IoTest, EmptyDatasetsRoundTrip) {
  ASSERT_TRUE(SaveBitVectors(Path("e1.txt"), {}).ok());
  auto v = LoadBitVectors(Path("e1.txt"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
  ASSERT_TRUE(SaveGraphs(Path("e2.txt"), {}).ok());
  auto g = LoadGraphs(Path("e2.txt"));
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->empty());
}

}  // namespace
}  // namespace pigeonring::io
