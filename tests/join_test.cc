// Tests for the self-join helpers: each join must equal the brute-force
// all-pairs result, and the pigeonring chain length must not change it.

#include "join/self_join.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "editdist/verify.h"
#include "graphed/ged.h"

namespace pigeonring::join {
namespace {

template <typename Predicate>
std::vector<IdPair> BruteForcePairs(int n, const Predicate& related) {
  std::vector<IdPair> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (related(i, j)) pairs.push_back({i, j});
    }
  }
  return pairs;
}

TEST(SelfJoinTest, HammingJoinMatchesBruteForce) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 64;
  config.num_objects = 400;
  config.num_clusters = 20;
  config.cluster_fraction = 0.6;
  config.flip_rate = 0.05;
  config.seed = 71;
  auto objects = datagen::GenerateBinaryVectors(config);
  hamming::HammingSearcher searcher(objects, 4);
  const int tau = 8;
  const auto expected = BruteForcePairs(
      static_cast<int>(objects.size()), [&](int i, int j) {
        return objects[i].HammingDistance(objects[j]) <= tau;
      });
  ASSERT_FALSE(expected.empty()) << "workload should contain close pairs";
  for (int l : {1, 3}) {
    JoinStats stats;
    EXPECT_EQ(HammingSelfJoin(searcher, tau, l, &stats), expected);
    EXPECT_EQ(stats.pairs, static_cast<int64_t>(expected.size()));
  }
}

TEST(SelfJoinTest, SetJoinMatchesBruteForceBothMeasures) {
  datagen::TokenSetConfig config;
  config.num_records = 400;
  config.avg_tokens = 12;
  config.universe_size = 900;
  config.duplicate_fraction = 0.4;
  config.seed = 73;
  setsim::SetCollection collection(datagen::GenerateTokenSets(config));
  {
    const double tau = 0.7;
    setsim::PkwiseSearcher searcher(&collection, tau, 5);
    const auto expected = BruteForcePairs(
        collection.num_records(), [&](int i, int j) {
          return setsim::Jaccard(collection.record(i),
                                 collection.record(j)) >= tau - 1e-12;
        });
    JoinStats stats;
    EXPECT_EQ(SetSelfJoin(searcher, collection, 2, &stats), expected);
  }
  {
    const int overlap = 8;
    setsim::PkwiseSearcher searcher(&collection, overlap, 5,
                                    setsim::SetMeasure::kOverlap);
    const auto expected = BruteForcePairs(
        collection.num_records(), [&](int i, int j) {
          return setsim::Overlap(collection.record(i),
                                 collection.record(j)) >= overlap;
        });
    JoinStats stats;
    EXPECT_EQ(SetSelfJoin(searcher, collection, 2, &stats), expected);
  }
}

TEST(SelfJoinTest, EditJoinMatchesBruteForce) {
  datagen::StringConfig config;
  config.num_records = 300;
  config.avg_length = 14;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.seed = 79;
  const auto data = datagen::GenerateStrings(config);
  const int tau = 2;
  editdist::EditDistanceSearcher searcher(&data, tau, 2);
  const auto expected = BruteForcePairs(
      static_cast<int>(data.size()), [&](int i, int j) {
        return editdist::BandedEditDistance(data[i], data[j], tau) <= tau;
      });
  ASSERT_FALSE(expected.empty());
  JoinStats stats;
  EXPECT_EQ(EditSelfJoin(searcher, data, editdist::EditFilter::kRing, 3,
                         &stats),
            expected);
  EXPECT_EQ(EditSelfJoin(searcher, data, editdist::EditFilter::kPivotal, 1,
                         &stats),
            expected);
}

TEST(SelfJoinTest, GraphJoinMatchesBruteForce) {
  datagen::GraphConfig config;
  config.num_graphs = 120;
  config.avg_vertices = 8;
  config.avg_edges = 9;
  config.vertex_labels = 8;
  config.duplicate_fraction = 0.4;
  config.max_perturb_ops = 2;
  config.seed = 83;
  const auto data = datagen::GenerateGraphs(config);
  const int tau = 2;
  graphed::GraphSearcher searcher(&data, tau);
  const auto expected = BruteForcePairs(
      static_cast<int>(data.size()), [&](int i, int j) {
        return graphed::GraphEditDistanceWithin(data[i], data[j], tau) <=
               tau;
      });
  JoinStats stats;
  EXPECT_EQ(GraphSelfJoin(searcher, data, graphed::GraphFilter::kRing, 2,
                          &stats),
            expected);
  EXPECT_EQ(GraphSelfJoin(searcher, data, graphed::GraphFilter::kPars, 1,
                          &stats),
            expected);
}

TEST(SelfJoinTest, PairsAreCanonicalAndUnique) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 64;
  config.num_objects = 200;
  config.num_clusters = 5;
  config.flip_rate = 0.02;
  config.seed = 89;
  auto objects = datagen::GenerateBinaryVectors(config);
  hamming::HammingSearcher searcher(objects, 4);
  const auto pairs = HammingSelfJoin(searcher, 12, 3);
  std::set<std::pair<int, int>> seen;
  for (const IdPair& p : pairs) {
    EXPECT_LT(p.first, p.second);
    EXPECT_TRUE(seen.insert({p.first, p.second}).second) << "duplicate pair";
  }
}

}  // namespace
}  // namespace pigeonring::join
