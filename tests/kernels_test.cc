// Kernel-layer tests: FlatBitTable layout invariants and, most importantly,
// randomized scalar/SIMD parity — every dispatch path must return identical
// distances and Leq verdicts for every dimension count 1..512, including
// non-multiple-of-64 tails.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/random.h"
#include "kernels/flat_bit_table.h"
#include "kernels/kernels.h"

namespace pigeonring {
namespace {

using kernels::FlatBitTable;
using kernels::Isa;

// Restores the startup dispatch target when a test that pins paths exits.
class IsaGuard {
 public:
  IsaGuard() : saved_(kernels::ActiveIsa()) {}
  ~IsaGuard() { kernels::SetActiveIsa(saved_); }

 private:
  Isa saved_;
};

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas = {Isa::kScalar};
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    IsaGuard guard;
    if (kernels::SetActiveIsa(isa)) isas.push_back(isa);
  }
  return isas;
}

BitVector RandomVector(int dimensions, double density, Rng* rng) {
  BitVector v(dimensions);
  for (int i = 0; i < dimensions; ++i) {
    if (rng->NextBernoulli(density)) v.Set(i, true);
  }
  return v;
}

// Bit-by-bit reference, deliberately ignorant of words and popcounts.
int ReferenceDistance(const BitVector& a, const BitVector& b, int begin,
                      int end) {
  int total = 0;
  for (int i = begin; i < end; ++i) total += a.Get(i) != b.Get(i) ? 1 : 0;
  return total;
}

TEST(DispatchTest, ScalarAlwaysSupportedAndBestIsActive) {
  IsaGuard guard;
  EXPECT_TRUE(kernels::SetActiveIsa(Isa::kScalar));
  EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
  EXPECT_TRUE(kernels::SetActiveIsa(kernels::BestIsa()));
  EXPECT_EQ(kernels::ActiveIsa(), kernels::BestIsa());
}

TEST(DispatchTest, UnsupportedIsaIsRefusedNotFaked) {
  IsaGuard guard;
  for (Isa isa : {Isa::kAvx2, Isa::kAvx512}) {
    const Isa before = kernels::ActiveIsa();
    if (!kernels::SetActiveIsa(isa)) {
      EXPECT_EQ(kernels::ActiveIsa(), before);
    } else {
      EXPECT_EQ(kernels::ActiveIsa(), isa);
    }
  }
}

TEST(DispatchTest, IsaNamesAreStable) {
  EXPECT_STREQ(kernels::IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(kernels::IsaName(Isa::kAvx2), "avx2");
  EXPECT_STREQ(kernels::IsaName(Isa::kAvx512), "avx512");
}

TEST(PopcountTest, Popcount64MatchesStdPopcount) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.Next();
    EXPECT_EQ(Popcount64(x), std::popcount(x));
  }
  EXPECT_EQ(Popcount64(0), 0);
  EXPECT_EQ(Popcount64(~uint64_t{0}), 64);
}

// The headline parity contract: for every dimension count 1..512 and every
// supported dispatch path, HammingDistanceWords, HammingDistanceLeqWords,
// and PopcountWords agree exactly with the bit-by-bit reference — same
// distances, same verdicts, tails included.
TEST(ParityTest, AllDimensionsAllIsasMatchReference) {
  const std::vector<Isa> isas = SupportedIsas();
  ASSERT_GE(isas.size(), 1u);
  Rng rng(12);
  IsaGuard guard;
  for (int d = 1; d <= 512; ++d) {
    const BitVector a = RandomVector(d, 0.5, &rng);
    const BitVector b =
        rng.NextBernoulli(0.2) ? a : RandomVector(d, 0.3, &rng);
    const int expected = ReferenceDistance(a, b, 0, d);
    const int num_words = a.num_words();
    // Taus spanning both verdicts, the exact boundary, and the extremes.
    const int taus[] = {0, expected - 1, expected, expected + 1, d};
    for (Isa isa : isas) {
      ASSERT_TRUE(kernels::SetActiveIsa(isa));
      EXPECT_EQ(kernels::HammingDistanceWords(a.words().data(),
                                              b.words().data(), num_words),
                expected)
          << "d=" << d << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(kernels::PopcountWords(a.words().data(), num_words),
                ReferenceDistance(a, BitVector(d), 0, d));
      for (int tau : taus) {
        if (tau < 0) continue;
        int dist = -1;
        const bool verdict = kernels::HammingDistanceLeqWords(
            a.words().data(), b.words().data(), num_words, tau, &dist);
        EXPECT_EQ(verdict, expected <= tau)
            << "d=" << d << " tau=" << tau << " isa=" << kernels::IsaName(isa);
        if (verdict) {
          EXPECT_EQ(dist, expected);  // exact on the pass side
        } else {
          EXPECT_GT(dist, tau);  // partial sum already over budget
        }
      }
    }
  }
}

TEST(ParityTest, RangeDistanceMatchesReferenceOnRandomSubranges) {
  const std::vector<Isa> isas = SupportedIsas();
  Rng rng(13);
  IsaGuard guard;
  for (int trial = 0; trial < 200; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(512));
    const BitVector a = RandomVector(d, 0.5, &rng);
    const BitVector b = RandomVector(d, 0.5, &rng);
    const int x = static_cast<int>(rng.NextBounded(d + 1));
    const int y = static_cast<int>(rng.NextBounded(d + 1));
    const int begin = std::min(x, y), end = std::max(x, y);
    const int expected = ReferenceDistance(a, b, begin, end);
    for (Isa isa : isas) {
      ASSERT_TRUE(kernels::SetActiveIsa(isa));
      EXPECT_EQ(kernels::HammingDistanceRangeWords(a.words().data(),
                                                   b.words().data(), begin,
                                                   end),
                expected)
          << "d=" << d << " [" << begin << "," << end << ") isa "
          << kernels::IsaName(isa);
    }
  }
}

TEST(ParityTest, MinXorPopcountMatchesAcrossIsasAndStops) {
  const std::vector<Isa> isas = SupportedIsas();
  Rng rng(14);
  IsaGuard guard;
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(32));
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.Next();
    const uint64_t key = rng.Next();
    int exact = 64 + 1;
    for (uint64_t k : keys) exact = std::min(exact, std::popcount(k ^ key));
    for (const int stop : {-1, 0, 16, 64}) {
      int first = -1;
      for (Isa isa : isas) {
        ASSERT_TRUE(kernels::SetActiveIsa(isa));
        const int got = kernels::MinXorPopcount(keys.data(), n, key, stop);
        // Identical across paths (same fixed block boundaries)...
        if (first < 0) first = got;
        EXPECT_EQ(got, first) << "isa=" << kernels::IsaName(isa);
        // ...and exact whenever the early stop cannot fire.
        if (stop < 0) EXPECT_EQ(got, exact);
        // Early-stopped results still satisfy the contract the chain check
        // relies on: no smaller than the true minimum, and <= stop when the
        // true minimum is.
        EXPECT_GE(got, exact);
        if (exact <= stop) EXPECT_LE(got, stop);
      }
    }
  }
  EXPECT_EQ(kernels::MinXorPopcount(nullptr, 0, 0, -1), 65);
}

TEST(FlatBitTableTest, RowsAreCacheAlignedAndZeroPadded) {
  Rng rng(15);
  for (const int d : {1, 63, 64, 65, 127, 128, 200, 512, 513}) {
    std::vector<BitVector> objects;
    for (int i = 0; i < 9; ++i) objects.push_back(RandomVector(d, 0.5, &rng));
    const FlatBitTable table = FlatBitTable::FromVectors(objects);
    ASSERT_EQ(table.num_rows(), 9);
    EXPECT_EQ(table.dimensions(), d);
    EXPECT_EQ(table.words_per_row(), (d + 63) / 64);
    EXPECT_GE(table.stride_words(), table.words_per_row());
    EXPECT_EQ(table.stride_words(),
              FlatBitTable::StrideWordsFor(table.words_per_row()));
    // Stride rule: power of two up to 8 words, then multiples of 8, so
    // every row either nests inside one cache line or starts on a line
    // boundary.
    if (table.stride_words() >= FlatBitTable::kAlignmentWords) {
      EXPECT_EQ(table.stride_words() % FlatBitTable::kAlignmentWords, 0);
    } else {
      EXPECT_EQ(FlatBitTable::kAlignmentWords % table.stride_words(), 0);
    }
    const int row_bytes = table.stride_words() * 8;
    for (int i = 0; i < table.num_rows(); ++i) {
      const uintptr_t addr = reinterpret_cast<uintptr_t>(table.row(i));
      EXPECT_EQ(addr % std::min(row_bytes, FlatBitTable::kAlignmentBytes),
                0u)
          << "row " << i << " d=" << d;
      // No row straddles a cache line unless it is larger than one.
      if (row_bytes <= FlatBitTable::kAlignmentBytes) {
        EXPECT_EQ(addr / FlatBitTable::kAlignmentBytes,
                  (addr + row_bytes - 1) / FlatBitTable::kAlignmentBytes);
      }
      for (int w = table.words_per_row(); w < table.stride_words(); ++w) {
        EXPECT_EQ(table.row(i)[w], 0u) << "padding word " << w;
      }
      EXPECT_EQ(table.RowAsBitVector(i), objects[i]);
    }
  }
}

TEST(FlatBitTableTest, CopyIsDeepAndEmptyTablesWork) {
  Rng rng(16);
  std::vector<BitVector> objects = {RandomVector(96, 0.5, &rng),
                                    RandomVector(96, 0.5, &rng)};
  FlatBitTable table = FlatBitTable::FromVectors(objects);
  FlatBitTable copy = table;
  EXPECT_NE(copy.row(0), table.row(0));  // distinct buffers
  copy.SetRow(0, objects[1]);
  EXPECT_EQ(table.RowAsBitVector(0), objects[0]);  // original untouched
  EXPECT_EQ(copy.RowAsBitVector(0), objects[1]);

  const FlatBitTable empty = FlatBitTable::FromVectors({});
  EXPECT_EQ(empty.num_rows(), 0);
  EXPECT_EQ(empty.dimensions(), 0);
  FlatBitTable empty_copy = empty;
  EXPECT_EQ(empty_copy.num_rows(), 0);
}

TEST(BatchVerifyTest, MatchesPerPairKernelOnEveryIsa) {
  const std::vector<Isa> isas = SupportedIsas();
  Rng rng(17);
  // 192 bits exercises the inlined small-row path (rows within one cache
  // line), 320 the dispatched path with a non-multiple-of-256 tail.
  for (const int d : {192, 320}) {
    std::vector<BitVector> objects;
    for (int i = 0; i < 300; ++i) {
      objects.push_back(RandomVector(d, 0.5, &rng));
    }
    const FlatBitTable table = FlatBitTable::FromVectors(objects);
    const BitVector query = RandomVector(d, 0.5, &rng);
    std::vector<int> ids;
    for (int i = 0; i < table.num_rows(); i += 2) ids.push_back(i);
    IsaGuard guard;
    for (Isa isa : isas) {
      ASSERT_TRUE(kernels::SetActiveIsa(isa));
      for (const int tau : {0, 40, 96, d}) {
        std::vector<uint8_t> verdicts(ids.size(), 2);
        std::vector<int> distances(ids.size(), -1);
        const int hits = kernels::VerifyHammingLeqBatch(
            table, query.words().data(), tau, ids.data(),
            static_cast<int>(ids.size()), verdicts.data(), distances.data());
        int expected_hits = 0;
        for (size_t i = 0; i < ids.size(); ++i) {
          const int exact = ReferenceDistance(objects[ids[i]], query, 0, d);
          EXPECT_EQ(verdicts[i] != 0, exact <= tau);
          if (verdicts[i]) {
            EXPECT_EQ(distances[i], exact);
            ++expected_hits;
          } else {
            EXPECT_GT(distances[i], tau);
          }
        }
        EXPECT_EQ(hits, expected_hits);
      }
    }
  }
}

// BitVector's public distance API sits on top of the dispatched kernels;
// pinning each path through it exercises the full rewired stack.
TEST(BitVectorKernelTest, DistancesIdenticalAcrossIsas) {
  const std::vector<Isa> isas = SupportedIsas();
  Rng rng(18);
  IsaGuard guard;
  for (const int d : {1, 65, 130, 256, 509}) {
    const BitVector a = RandomVector(d, 0.5, &rng);
    const BitVector b = RandomVector(d, 0.5, &rng);
    const int expected = ReferenceDistance(a, b, 0, d);
    for (Isa isa : isas) {
      ASSERT_TRUE(kernels::SetActiveIsa(isa));
      EXPECT_EQ(a.HammingDistance(b), expected);
      EXPECT_EQ(a.PartDistance(b, d / 3, d), ReferenceDistance(a, b, d / 3, d));
      EXPECT_EQ(a.CountOnes(), ReferenceDistance(a, BitVector(d), 0, d));
    }
  }
}

}  // namespace
}  // namespace pigeonring
