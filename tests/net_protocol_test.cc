// Wire-protocol tests in the spirit of storage_corruption_test: codec
// round-trips for every payload type, then a live loopback server fed
// truncated frames, flipped bytes, oversized declared lengths, stale
// protocol versions, and seeded random mutations — every one must yield
// a typed error frame (or a clean close), never a crash or a hang, and
// recoverable corruption must leave the connection serving.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/db.h"
#include "common/bitvector.h"
#include "common/random.h"
#include "datagen/binary_vectors.h"
#include "graphed/graph.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "storage/bytes.h"
#include "storage/crc32c.h"

namespace pigeonring::net {
namespace {

using storage::ByteReader;
using storage::ByteWriter;

std::vector<uint8_t> EncodeQueryBytes(const api::Query& query) {
  ByteWriter w;
  EncodeQuery(w, query);
  return std::move(w).Take();
}

api::Query RoundTripQuery(const api::Query& query) {
  const std::vector<uint8_t> bytes = EncodeQueryBytes(query);
  ByteReader r(bytes.data(), bytes.size());
  api::Query out;
  EXPECT_TRUE(DecodeQuery(r, &out));
  EXPECT_TRUE(r.AtEnd());
  return out;
}

TEST(ProtocolCodecTest, QueriesRoundTripInAllDomains) {
  BitVector bits(70);
  bits.Set(0, true);
  bits.Set(65, true);
  auto hamming = RoundTripQuery(api::Query(bits));
  EXPECT_EQ(std::get<BitVector>(hamming).words(), bits.words());
  EXPECT_EQ(std::get<BitVector>(hamming).dimensions(), 70);

  api::SetQuery set;
  set.tokens = {3, 1, 4, 1, 5};
  set.ranked = true;
  auto sets = RoundTripQuery(api::Query(set));
  EXPECT_EQ(std::get<api::SetQuery>(sets).tokens, set.tokens);
  EXPECT_TRUE(std::get<api::SetQuery>(sets).ranked);

  auto edit = RoundTripQuery(api::Query(std::string("pigeonring")));
  EXPECT_EQ(std::get<std::string>(edit), "pigeonring");

  graphed::Graph g({1, 2, 3});
  g.AddEdge(0, 1, 7);
  g.AddEdge(1, 2, 8);
  auto graph = RoundTripQuery(api::Query(g));
  EXPECT_EQ(std::get<graphed::Graph>(graph).vertex_labels(),
            g.vertex_labels());
  EXPECT_EQ(std::get<graphed::Graph>(graph).edges(), g.edges());

  // An empty-domain record round-trips too.
  auto empty = RoundTripQuery(api::Query(BitVector(0)));
  EXPECT_EQ(std::get<BitVector>(empty).dimensions(), 0);
}

bool DecodeQueryBytes(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes.data(), bytes.size());
  api::Query out;
  return DecodeQuery(r, &out) && r.AtEnd();
}

TEST(ProtocolCodecTest, MalformedQueriesAreRejectedNotCrashed) {
  // Unknown domain tag.
  EXPECT_FALSE(DecodeQueryBytes({9, 0, 0, 0}));
  EXPECT_FALSE(DecodeQueryBytes({}));

  // Hamming: planted bits past `dimensions` must be rejected, as must a
  // word count that disagrees with the dimensionality.
  {
    ByteWriter w;
    w.U8(0);
    w.I32(70);  // needs 2 words; bit 71 is out of range
    w.VecU64({0, 1ull << 62});
    EXPECT_FALSE(DecodeQueryBytes(w.data()));
  }
  {
    ByteWriter w;
    w.U8(0);
    w.I32(70);
    w.VecU64({1});  // one word cannot carry 70 dimensions
    EXPECT_FALSE(DecodeQueryBytes(w.data()));
  }
  {
    ByteWriter w;
    w.U8(0);
    w.I32(-64);
    w.VecU64({});
    EXPECT_FALSE(DecodeQueryBytes(w.data()));
  }

  // Sets: the ranked flag is strictly 0/1.
  {
    ByteWriter w;
    w.U8(1);
    w.VecI32({1, 2});
    w.U8(2);
    EXPECT_FALSE(DecodeQueryBytes(w.data()));
  }

  // Graphs: self-loops, out-of-range endpoints, duplicate edges.
  for (auto [u, v] : {std::pair<int, int>{0, 0}, {0, 5}, {-1, 1}}) {
    ByteWriter w;
    w.U8(3);
    w.VecI32({1, 2});
    w.U32(1);
    w.I32(u);
    w.I32(v);
    w.I32(0);
    EXPECT_FALSE(DecodeQueryBytes(w.data())) << u << "," << v;
  }
  {
    ByteWriter w;
    w.U8(3);
    w.VecI32({1, 2});
    w.U32(2);  // the same edge twice
    for (int i = 0; i < 2; ++i) {
      w.I32(0);
      w.I32(1);
      w.I32(4);
    }
    EXPECT_FALSE(DecodeQueryBytes(w.data()));
  }

  // Every truncation of a valid encoding fails cleanly.
  graphed::Graph g({1, 2, 3});
  g.AddEdge(0, 2, 9);
  for (const api::Query& query :
       {api::Query(BitVector(64)), api::Query(std::string("abc")),
        api::Query(g)}) {
    const std::vector<uint8_t> bytes = EncodeQueryBytes(query);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
      EXPECT_FALSE(DecodeQueryBytes(prefix)) << "cut=" << cut;
    }
  }
}

TEST(ProtocolCodecTest, RepliesRoundTrip) {
  BatchReply batch;
  batch.ids = {{1, 2, 3}, {}, {7}};
  batch.candidates = 42;
  batch.results = 4;
  batch.server_millis = 1.5;
  ByteWriter w;
  EncodeBatchReply(w, batch);
  ByteReader r(w.data().data(), w.data().size());
  BatchReply batch_out;
  ASSERT_TRUE(DecodeBatchReply(r, &batch_out));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(batch_out.ids, batch.ids);
  EXPECT_EQ(batch_out.candidates, 42);
  EXPECT_EQ(batch_out.server_millis, 1.5);

  JoinReply join;
  join.pairs = {{0, 3}, {1, 2}};
  join.candidates = 9;
  ByteWriter wj;
  EncodeJoinReply(wj, join);
  ByteReader rj(wj.data().data(), wj.data().size());
  JoinReply join_out;
  ASSERT_TRUE(DecodeJoinReply(rj, &join_out));
  EXPECT_EQ(join_out.pairs, join.pairs);

  ServerStats stats;
  stats.num_records = 100;
  stats.epoch = 3;
  stats.accepted = 50;
  stats.shed = 2;
  stats.protocol_errors = 1;
  stats.ops.push_back({static_cast<uint8_t>(Op::kSearch), 10, 120.0, 900.0});
  stats.shards.push_back({.records = 34, .pending_delta = 2});
  stats.shards.push_back({.records = 33, .pending_delta = 0});
  stats.shards.push_back({.records = 33, .pending_delta = 1});
  ByteWriter ws;
  EncodeServerStats(ws, stats);
  ByteReader rs(ws.data().data(), ws.data().size());
  ServerStats stats_out;
  ASSERT_TRUE(DecodeServerStats(rs, &stats_out));
  EXPECT_EQ(stats_out.num_records, 100);
  EXPECT_EQ(stats_out.shed, 2);
  ASSERT_EQ(stats_out.ops.size(), 1u);
  EXPECT_EQ(stats_out.ops[0].p99_micros, 900.0);
  ASSERT_EQ(stats_out.shards.size(), 3u);
  EXPECT_EQ(stats_out.shards[0].records, 34);
  EXPECT_EQ(stats_out.shards[0].pending_delta, 2);
  EXPECT_EQ(stats_out.shards[2].pending_delta, 1);

  // A declared shard count beyond the remaining bytes is rejected before
  // any allocation, like every other length field in the protocol.
  std::vector<uint8_t> bytes = std::move(ws).Take();
  bytes.resize(bytes.size() - 3 * 8);  // drop the shard rows, keep the count
  ByteReader truncated(bytes.data(), bytes.size());
  ServerStats rejected;
  EXPECT_FALSE(DecodeServerStats(truncated, &rejected));
}

TEST(ProtocolCodecTest, WireErrorsTransportEveryStatusCode) {
  const Status statuses[] = {
      Status::InvalidArgument("a"),    Status::OutOfRange("b"),
      Status::NotFound("c"),           Status::FailedPrecondition("d"),
      Status::Internal("e"),           Status::DataLoss("f"),
      Status::ResourceExhausted("g"),  Status::Unavailable("h"),
  };
  for (const Status& status : statuses) {
    ByteWriter w;
    EncodeErrorPayload(w, status);
    ByteReader r(w.data().data(), w.data().size());
    const Status decoded = DecodeErrorPayload(r);
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
  }
  // Unknown wire codes (a newer peer) decode as kInternal, not a crash.
  EXPECT_EQ(StatusFromWire(200, "future code").code(), StatusCode::kInternal);
  // A malformed error payload decodes as kInternal too.
  ByteReader r(nullptr, 0);
  EXPECT_EQ(DecodeErrorPayload(r).code(), StatusCode::kInternal);
}

// --- Live-server corruption tests ---

class ProtocolCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::BinaryVectorConfig config;
    config.dimensions = 64;
    config.num_objects = 120;
    config.num_clusters = 10;
    config.seed = 2201;
    api::IndexSpec spec;
    spec.domain = api::Domain::kHamming;
    spec.tau = 8;
    spec.chain_length = 3;
    auto db =
        api::Db::Open(spec, api::Dataset(datagen::GenerateBinaryVectors(config)));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto server = Server::Start(std::move(db).value());
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = new Server(std::move(server).value());
  }

  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
  }

  static int port() { return server_->port(); }

  // The server must answer a fresh, well-formed connection — the "did the
  // corruption kill it?" probe used after every attack.
  static void ExpectServerAlive() {
    auto client = Client::Connect("127.0.0.1", port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_TRUE(client->Ping().ok());
  }

  static Socket RawConnect() {
    auto socket = ConnectTcp("127.0.0.1", port());
    EXPECT_TRUE(socket.ok()) << socket.status().ToString();
    return std::move(socket).value();
  }

  // A frame with every field under the test's control.
  static std::vector<uint8_t> RawFrame(uint32_t magic, uint8_t version,
                                       uint8_t op, uint16_t reserved,
                                       uint32_t declared_len,
                                       const std::vector<uint8_t>& payload,
                                       uint32_t crc) {
    ByteWriter w;
    w.U32(magic);
    w.U8(version);
    w.U8(op);
    w.U8(static_cast<uint8_t>(reserved & 0xFF));
    w.U8(static_cast<uint8_t>(reserved >> 8));
    w.U32(declared_len);
    w.U32(crc);
    w.Bytes(payload.data(), payload.size());
    return std::move(w).Take();
  }

  static std::vector<uint8_t> ValidFrame(uint8_t op,
                                         const std::vector<uint8_t>& payload) {
    return RawFrame(kFrameMagic, kProtocolVersion, op, 0,
                    static_cast<uint32_t>(payload.size()), payload,
                    storage::Crc32c(payload.data(), payload.size()));
  }

  // Sends raw bytes and expects a typed error frame back.
  static Status SendAndReadError(Socket& socket,
                                 const std::vector<uint8_t>& bytes) {
    EXPECT_TRUE(socket.SendAll(bytes.data(), bytes.size()).ok());
    FrameResult in = RecvFrame(socket);
    EXPECT_TRUE(in.status.ok()) << in.status.ToString();
    EXPECT_EQ(in.frame.op, kErrorOp);
    ByteReader r(in.frame.payload.data(), in.frame.payload.size());
    return DecodeErrorPayload(r);
  }

  static void ExpectConnectionStillServes(Socket& socket) {
    const std::vector<uint8_t> ping = ValidFrame(
        static_cast<uint8_t>(Op::kPing), {});
    ASSERT_TRUE(socket.SendAll(ping.data(), ping.size()).ok());
    FrameResult in = RecvFrame(socket);
    ASSERT_TRUE(in.status.ok()) << in.status.ToString();
    EXPECT_EQ(in.frame.op, static_cast<uint8_t>(Op::kPing) | kReplyBit);
  }

  static Server* server_;
};

Server* ProtocolCorruptionTest::server_ = nullptr;

TEST_F(ProtocolCorruptionTest, TruncatedHeaderNeverCrashes) {
  for (size_t len : {1u, 5u, 15u}) {
    Socket socket = RawConnect();
    const std::vector<uint8_t> frame =
        ValidFrame(static_cast<uint8_t>(Op::kPing), {});
    ASSERT_TRUE(socket.SendAll(frame.data(), len).ok());
    socket.Close();  // EOF mid-header
  }
  ExpectServerAlive();
}

TEST_F(ProtocolCorruptionTest, TruncatedPayloadNeverCrashes) {
  Socket socket = RawConnect();
  std::vector<uint8_t> payload(100, 0xAB);
  std::vector<uint8_t> frame =
      ValidFrame(static_cast<uint8_t>(Op::kSearch), payload);
  frame.resize(kFrameHeaderBytes + 10);  // EOF mid-payload
  ASSERT_TRUE(socket.SendAll(frame.data(), frame.size()).ok());
  socket.Close();
  ExpectServerAlive();
}

TEST_F(ProtocolCorruptionTest, BadMagicGetsTypedErrorAndClose) {
  Socket socket = RawConnect();
  const Status error = SendAndReadError(
      socket, RawFrame(0xDEADBEEF, kProtocolVersion,
                       static_cast<uint8_t>(Op::kPing), 0, 0, {}, 0));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.message().find("magic"), std::string::npos);
  // The stream is unframed after a magic mismatch: the server closes.
  FrameResult next = RecvFrame(socket);
  EXPECT_EQ(next.status.code(), StatusCode::kUnavailable);
  ExpectServerAlive();
}

TEST_F(ProtocolCorruptionTest, OversizedDeclaredLengthIsRejectedAndClosed) {
  Socket socket = RawConnect();
  const Status error = SendAndReadError(
      socket,
      RawFrame(kFrameMagic, kProtocolVersion, static_cast<uint8_t>(Op::kPing),
               0, kMaxPayloadBytes + 1, {}, 0));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.message().find("oversized"), std::string::npos);
  FrameResult next = RecvFrame(socket);
  EXPECT_EQ(next.status.code(), StatusCode::kUnavailable);
  ExpectServerAlive();
}

TEST_F(ProtocolCorruptionTest, StaleVersionGetsTypedErrorAndKeepsConnection) {
  Socket socket = RawConnect();
  const std::vector<uint8_t> payload = {1, 2, 3};
  const Status error = SendAndReadError(
      socket,
      RawFrame(kFrameMagic, 9, static_cast<uint8_t>(Op::kPing), 0,
               static_cast<uint32_t>(payload.size()), payload,
               storage::Crc32c(payload.data(), payload.size())));
  EXPECT_EQ(error.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(error.message().find("version"), std::string::npos);
  // The whole stale frame was consumed — the connection still serves.
  ExpectConnectionStillServes(socket);
}

TEST_F(ProtocolCorruptionTest, CrcMismatchGetsTypedErrorAndKeepsConnection) {
  Socket socket = RawConnect();
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> payload = {10, 20, 30, 40};
    std::vector<uint8_t> frame =
        ValidFrame(static_cast<uint8_t>(Op::kSearch), payload);
    frame[kFrameHeaderBytes + 1] ^= 0x40;  // flip a payload bit
    const Status error = SendAndReadError(socket, frame);
    EXPECT_EQ(error.code(), StatusCode::kDataLoss);
    EXPECT_NE(error.message().find("checksum"), std::string::npos);
  }
  ExpectConnectionStillServes(socket);
}

TEST_F(ProtocolCorruptionTest, ReservedBitsGetTypedErrorAndKeepConnection) {
  Socket socket = RawConnect();
  const Status error = SendAndReadError(
      socket, RawFrame(kFrameMagic, kProtocolVersion,
                       static_cast<uint8_t>(Op::kPing), 0x0100, 0, {}, 0));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  ExpectConnectionStillServes(socket);
}

TEST_F(ProtocolCorruptionTest, UnknownOpGetsTypedErrorAndKeepsConnection) {
  Socket socket = RawConnect();
  const Status error =
      SendAndReadError(socket, ValidFrame(0x42, {1, 2, 3}));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(error.message().find("op"), std::string::npos);
  ExpectConnectionStillServes(socket);
}

TEST_F(ProtocolCorruptionTest, GarbageInsideValidFrameKeepsConnection) {
  Socket socket = RawConnect();
  // A CRC-valid search frame whose payload is not a query.
  const Status error = SendAndReadError(
      socket,
      ValidFrame(static_cast<uint8_t>(Op::kSearch), {0xFF, 0xFF, 0xFF}));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  // Same connection, now a real search: must work.
  BitVector query(64);
  ByteWriter w;
  EncodeQuery(w, api::Query(query));
  const std::vector<uint8_t> frame =
      ValidFrame(static_cast<uint8_t>(Op::kSearch), w.data());
  ASSERT_TRUE(socket.SendAll(frame.data(), frame.size()).ok());
  FrameResult in = RecvFrame(socket);
  ASSERT_TRUE(in.status.ok()) << in.status.ToString();
  EXPECT_EQ(in.frame.op, static_cast<uint8_t>(Op::kSearch) | kReplyBit);
}

TEST_F(ProtocolCorruptionTest, TrailingGarbageAfterPayloadIsTypedError) {
  Socket socket = RawConnect();
  // Valid query encoding plus trailing bytes, CRC recomputed to match:
  // the frame is well-formed, the payload is not.
  BitVector query(64);
  ByteWriter w;
  EncodeQuery(w, api::Query(query));
  std::vector<uint8_t> payload = w.data();
  payload.push_back(0);
  const Status error = SendAndReadError(
      socket, ValidFrame(static_cast<uint8_t>(Op::kSearch), payload));
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  ExpectConnectionStillServes(socket);
}

TEST_F(ProtocolCorruptionTest, FuzzedFramesNeverCrashTheServer) {
  // Seeded random mutations of a valid search frame, fired one connection
  // each with no reply read (so no mutation can deadlock the test), then
  // a liveness probe. The ctest timeout is the hang detector.
  BitVector bits(64);
  bits.Set(3, true);
  ByteWriter w;
  EncodeQuery(w, api::Query(bits));
  const std::vector<uint8_t> valid =
      ValidFrame(static_cast<uint8_t>(Op::kSearch), w.data());

  Rng rng(20260808);
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<uint8_t> frame = valid;
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBounded(frame.size());
      frame[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    if (rng.NextBernoulli(0.3)) {
      frame.resize(1 + rng.NextBounded(frame.size()));  // truncate too
    }
    Socket socket = RawConnect();
    ASSERT_TRUE(socket.valid());
    (void)socket.SendAll(frame.data(), frame.size());
    socket.Close();
  }
  ExpectServerAlive();
}

}  // namespace
}  // namespace pigeonring::net
