// End-to-end smoke of the network service on a loopback ephemeral port:
// real TCP, real frames. Pins the acceptance contract of the net
// subsystem: client search / batch / self-join results are byte-identical
// to an in-process api::Session over the same snapshot (all four
// domains), mutations through the server converge identically to direct
// api::Writer use (down to Save() byte-identity), overload produces typed
// kResourceExhausted frames, stats expose admission counters and per-op
// latency histograms, and graceful shutdown drains in-flight ops.
//
// Runs under the TSan CI job — keep the datasets small.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/db.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/bytes.h"

namespace pigeonring::net {
namespace {

api::Db OpenOrDie(const api::IndexSpec& spec, api::Dataset dataset) {
  auto opened = api::Db::Open(spec, std::move(dataset));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

api::Db OpenHamming(uint64_t seed = 3301) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 64;
  config.num_objects = 200;
  config.num_clusters = 12;
  config.cluster_fraction = 0.6;
  config.flip_rate = 0.05;
  config.seed = seed;
  api::IndexSpec spec;
  spec.domain = api::Domain::kHamming;
  spec.tau = 8;
  spec.chain_length = 3;
  return OpenOrDie(spec, api::Dataset(datagen::GenerateBinaryVectors(config)));
}

api::Db OpenSets() {
  datagen::TokenSetConfig config;
  config.num_records = 200;
  config.avg_tokens = 12;
  config.universe_size = 600;
  config.duplicate_fraction = 0.4;
  config.seed = 3303;
  api::IndexSpec spec;
  spec.domain = api::Domain::kSet;
  spec.tau = 0.7;
  spec.chain_length = 2;
  return OpenOrDie(spec, api::Dataset(datagen::GenerateTokenSets(config)));
}

api::Db OpenStrings() {
  datagen::StringConfig config;
  config.num_records = 150;
  config.avg_length = 14;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.seed = 3305;
  api::IndexSpec spec;
  spec.domain = api::Domain::kEdit;
  spec.tau = 2;
  spec.chain_length = 3;
  return OpenOrDie(spec, api::Dataset(datagen::GenerateStrings(config)));
}

api::Db OpenGraphs() {
  datagen::GraphConfig config;
  config.num_graphs = 40;
  config.avg_vertices = 8;
  config.avg_edges = 9;
  config.vertex_labels = 8;
  config.duplicate_fraction = 0.4;
  config.max_perturb_ops = 2;
  config.seed = 3307;
  api::IndexSpec spec;
  spec.domain = api::Domain::kGraph;
  spec.tau = 2;
  spec.chain_length = 2;
  return OpenOrDie(spec, api::Dataset(datagen::GenerateGraphs(config)));
}

std::vector<api::Query> SampleQueries(api::Session& session, int count) {
  std::vector<api::Query> queries;
  const int n = session.num_records();
  for (int i = 0; i < count; ++i) {
    auto query = session.RecordQuery((i * 7) % n);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    queries.push_back(std::move(query).value());
  }
  return queries;
}

Client ConnectOrDie(int port) {
  auto client = Client::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

std::vector<uint8_t> QueryBytes(const api::Query& query) {
  storage::ByteWriter w;
  EncodeQuery(w, query);
  return std::move(w).Take();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The acceptance pin: over real TCP, search / batch / self-join results
// must be byte-identical to an in-process Session on the same snapshot.
void ExpectClientMatchesInProcess(api::Db db) {
  api::Session session = db.NewSession();
  const std::vector<api::Query> queries = SampleQueries(session, 12);

  auto server = Server::Start(db);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client = ConnectOrDie(server->port());
  ASSERT_TRUE(client.Ping().ok());

  // Single-query search, query by query.
  for (const api::Query& query : queries) {
    auto in_process = session.Search(query);
    ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();
    auto remote = client.Search(query);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote->ids, in_process->ids);
    EXPECT_EQ(remote->candidates, in_process->stats.candidates);
    EXPECT_EQ(remote->results, in_process->stats.results);
  }

  // Batch.
  auto in_batch = session.SearchBatch(queries);
  ASSERT_TRUE(in_batch.ok());
  auto remote_batch = client.SearchBatch(queries);
  ASSERT_TRUE(remote_batch.ok()) << remote_batch.status().ToString();
  EXPECT_EQ(remote_batch->ids, in_batch->ids);
  EXPECT_EQ(remote_batch->candidates, in_batch->stats.candidates);

  // Self-join.
  auto in_join = session.SelfJoin();
  ASSERT_TRUE(in_join.ok());
  auto remote_join = client.SelfJoin();
  ASSERT_TRUE(remote_join.ok()) << remote_join.status().ToString();
  EXPECT_EQ(remote_join->pairs, in_join->pairs);
  EXPECT_EQ(remote_join->candidates, in_join->stats.candidates);

  // Record sampling round-trips the same record the session sees.
  auto remote_record = client.RecordQuery(3);
  ASSERT_TRUE(remote_record.ok());
  auto local_record = session.RecordQuery(3);
  ASSERT_TRUE(local_record.ok());
  EXPECT_EQ(QueryBytes(*remote_record), QueryBytes(*local_record));
  EXPECT_EQ(client.RecordQuery(-1).status().code(), StatusCode::kOutOfRange);

  server->Stop();
}

TEST(NetSmoke, ClientMatchesInProcessHamming) {
  ExpectClientMatchesInProcess(OpenHamming());
}

TEST(NetSmoke, ClientMatchesInProcessSets) {
  ExpectClientMatchesInProcess(OpenSets());
}

TEST(NetSmoke, ClientMatchesInProcessStrings) {
  ExpectClientMatchesInProcess(OpenStrings());
}

TEST(NetSmoke, ClientMatchesInProcessGraphs) {
  ExpectClientMatchesInProcess(OpenGraphs());
}

// Mutations through the server must converge identically to driving an
// api::Writer directly — same results, same record counts, and (after
// compaction) byte-identical Save() files.
TEST(NetSmoke, MutationsConvergeLikeDirectWriter) {
  api::Db served = OpenHamming(4401);
  api::Db direct = OpenHamming(4401);  // identical twin, mutated locally

  auto server = Server::Start(served);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client = ConnectOrDie(server->port());
  auto writer = direct.NewWriter();
  ASSERT_TRUE(writer.ok());

  // Identical mutation sequences: insert two records sampled from the
  // dataset, remove one original and one insert, then compact.
  api::Session sampler = direct.NewSession();
  const std::vector<api::Query> inserts = SampleQueries(sampler, 2);
  std::vector<int> remote_ids;
  std::vector<int> direct_ids;
  for (const api::Query& record : inserts) {
    auto remote = client.Insert(record);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    remote_ids.push_back(*remote);
    auto local = writer->Insert(record);
    ASSERT_TRUE(local.ok());
    direct_ids.push_back(*local);
  }
  EXPECT_EQ(remote_ids, direct_ids) << "id assignment must match";

  // Read-your-writes: the inserted record matches itself on the next
  // request, through the server, on this same connection.
  auto self_search = client.Search(inserts[0]);
  ASSERT_TRUE(self_search.ok());
  EXPECT_TRUE(std::find(self_search->ids.begin(), self_search->ids.end(),
                        remote_ids[0]) != self_search->ids.end());

  ASSERT_TRUE(client.Remove(5).ok());
  ASSERT_TRUE(writer->Remove(5).ok());
  ASSERT_TRUE(client.Remove(remote_ids[1]).ok());
  ASSERT_TRUE(writer->Remove(direct_ids[1]).ok());
  // The writer's typed no-op travels the wire typed.
  EXPECT_EQ(client.Remove(999999).code(), StatusCode::kNotFound);

  ASSERT_TRUE(client.Compact().ok());
  ASSERT_TRUE(writer->Compact().ok());

  // Converged: same counts, same results for the same queries.
  EXPECT_EQ(served.num_records(), direct.num_records());
  api::Session direct_session = direct.NewSession();
  const std::vector<api::Query> queries = SampleQueries(direct_session, 10);
  auto expected = direct_session.SearchBatch(queries);
  ASSERT_TRUE(expected.ok());
  auto remote = client.SearchBatch(queries);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->ids, expected->ids);

  // The strongest pin: both databases serialize byte-identically.
  const std::string dir = ::testing::TempDir();
  const std::string served_path = dir + "/net_smoke_served.pri";
  const std::string direct_path = dir + "/net_smoke_direct.pri";
  ASSERT_TRUE(served.Save(served_path).ok());
  ASSERT_TRUE(direct.Save(direct_path).ok());
  EXPECT_EQ(ReadFileBytes(served_path), ReadFileBytes(direct_path));
  std::remove(served_path.c_str());
  std::remove(direct_path.c_str());

  server->Stop();
}

// A second connection opened before a mutation must observe it afterwards
// (the server re-mints per-connection sessions on mutation).
TEST(NetSmoke, MutationsAreVisibleAcrossConnections) {
  api::Db db = OpenHamming(4403);
  auto server = Server::Start(db);
  ASSERT_TRUE(server.ok());
  Client writer_client = ConnectOrDie(server->port());
  Client reader_client = ConnectOrDie(server->port());
  ASSERT_TRUE(reader_client.Ping().ok());  // session minted pre-mutation

  api::Session sampler = db.NewSession();
  const api::Query record = SampleQueries(sampler, 1)[0];
  auto id = writer_client.Insert(record);
  ASSERT_TRUE(id.ok());

  auto seen = reader_client.Search(record);
  ASSERT_TRUE(seen.ok());
  EXPECT_TRUE(std::find(seen->ids.begin(), seen->ids.end(), *id) !=
              seen->ids.end())
      << "reader connection must observe the committed insert";
}

TEST(NetSmoke, StatsExposeCountersAndLatencyHistograms) {
  api::Db db = OpenHamming();
  api::Session session = db.NewSession();
  const std::vector<api::Query> queries = SampleQueries(session, 4);

  auto server = Server::Start(db);
  ASSERT_TRUE(server.ok());
  Client client = ConnectOrDie(server->port());
  for (const api::Query& query : queries) {
    ASSERT_TRUE(client.Search(query).ok());
  }
  ASSERT_TRUE(client.SearchBatch(queries).ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_records, db.num_records());
  EXPECT_EQ(stats->epoch, db.epoch());
  EXPECT_EQ(stats->accepted, 5);  // 4 searches + 1 batch
  EXPECT_EQ(stats->shed, 0);
  EXPECT_EQ(stats->protocol_errors, 0);

  bool saw_search = false;
  bool saw_batch = false;
  for (const OpStats& op : stats->ops) {
    if (op.op == static_cast<uint8_t>(Op::kSearch)) {
      saw_search = true;
      EXPECT_EQ(op.count, 4);
      EXPECT_GT(op.p50_micros, 0);
      EXPECT_GE(op.p99_micros, op.p50_micros);
    }
    if (op.op == static_cast<uint8_t>(Op::kBatch)) {
      saw_batch = true;
      EXPECT_EQ(op.count, 1);
    }
  }
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_batch);

  // An unsharded index reports a single placement row covering everything.
  ASSERT_EQ(stats->shards.size(), 1u);
  EXPECT_EQ(stats->shards[0].records, db.num_records());
  EXPECT_EQ(stats->shards[0].pending_delta, 0);

  // The in-process snapshot agrees with the wire view.
  ServerStats snapshot = server->Snapshot();
  EXPECT_EQ(snapshot.accepted, stats->accepted);
}

// A sharded served index exposes one placement row per shard: rows sum to
// the committed record count, served inserts surface as pending delta on
// the round-robin owner shard, and compaction folds them back in.
TEST(NetSmoke, StatsExposePerShardPlacement) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 64;
  config.num_objects = 202;
  config.num_clusters = 12;
  config.seed = 3309;
  api::IndexSpec spec;
  spec.domain = api::Domain::kHamming;
  spec.tau = 8;
  spec.chain_length = 3;
  spec.shards = 4;
  api::Db db =
      OpenOrDie(spec, api::Dataset(datagen::GenerateBinaryVectors(config)));

  auto server = Server::Start(db);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client = ConnectOrDie(server->port());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->shards.size(), 4u);
  int total = 0;
  for (const ShardStats& shard : stats->shards) {
    total += shard.records;
    EXPECT_EQ(shard.pending_delta, 0);
  }
  EXPECT_EQ(total, db.num_records());

  // Two served inserts: ids 202 and 203 land as pending delta on their
  // round-robin owner shards (202 % 4 = 2, 203 % 4 = 3).
  api::Session sampler = db.NewSession();
  for (const api::Query& record : SampleQueries(sampler, 2)) {
    ASSERT_TRUE(client.Insert(record).ok());
  }
  stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->shards.size(), 4u);
  EXPECT_EQ(stats->shards[0].pending_delta, 0);
  EXPECT_EQ(stats->shards[1].pending_delta, 0);
  EXPECT_EQ(stats->shards[2].pending_delta, 1);
  EXPECT_EQ(stats->shards[3].pending_delta, 1);

  // Compaction folds the delta in; rows re-sum to the new total with no
  // pending rows left.
  ASSERT_TRUE(client.Compact().ok());
  stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->shards.size(), 4u);
  total = 0;
  for (const ShardStats& shard : stats->shards) {
    total += shard.records;
    EXPECT_EQ(shard.pending_delta, 0);
  }
  EXPECT_EQ(total, 204);
}

TEST(NetSmoke, OverloadShedsWithTypedResourceExhausted) {
  api::Db db = OpenHamming();
  api::Session session = db.NewSession();
  const api::Query query = SampleQueries(session, 1)[0];

  // max_inflight = 0 sheds every admission-controlled op — deterministic
  // overload.
  ServerOptions options;
  options.max_inflight = 0;
  auto server = Server::Start(db, options);
  ASSERT_TRUE(server.ok());
  Client client = ConnectOrDie(server->port());

  const Status shed = client.Search(query).status();
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.message().find("capacity"), std::string::npos);
  EXPECT_EQ(client.SelfJoin().status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(client.Insert(query).status().code(),
            StatusCode::kResourceExhausted);

  // Shedding is not an error spiral: the connection stays up and the
  // control plane (ping / stats / record) still answers.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.RecordQuery(0).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->shed, 3);
  EXPECT_EQ(stats->protocol_errors, 0);
}

TEST(NetSmoke, GracefulShutdownDrainsInFlightOps) {
  api::Db db = OpenHamming();
  auto server = Server::Start(db);
  ASSERT_TRUE(server.ok());
  const int port = server->port();

  // A client fires a self-join (the heaviest op) and must receive its
  // complete reply even though Stop() lands while it is in flight.
  std::optional<StatusOr<JoinReply>> remote_join;
  std::thread requester([&] {
    Client client = ConnectOrDie(port);
    remote_join.emplace(client.SelfJoin());
  });
  // Wait until the op is admitted (or already finished), then stop.
  while (server->Snapshot().accepted == 0) {
    std::this_thread::yield();
  }
  server->Stop();
  requester.join();

  ASSERT_TRUE(remote_join.has_value());
  ASSERT_TRUE(remote_join->ok())
      << "drained op must deliver its reply, got "
      << remote_join->status().ToString();
  api::Session session = db.NewSession();
  auto expected = session.SelfJoin();
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*remote_join)->pairs, expected->pairs);

  // After Stop: no new connections, and Stop is idempotent.
  EXPECT_EQ(Client::Connect("127.0.0.1", port).status().code(),
            StatusCode::kUnavailable);
  server->Stop();
}

TEST(NetSmoke, StartRejectsBadOptionsTyped) {
  api::Db db = OpenHamming();
  ServerOptions bad_host;
  bad_host.host = "not-an-address";
  EXPECT_EQ(Server::Start(db, bad_host).status().code(),
            StatusCode::kInvalidArgument);
  ServerOptions bad_inflight;
  bad_inflight.max_inflight = -1;
  EXPECT_EQ(Server::Start(db, bad_inflight).status().code(),
            StatusCode::kInvalidArgument);

  // Binding the same explicit port twice fails typed.
  auto first = Server::Start(db);
  ASSERT_TRUE(first.ok());
  ServerOptions taken;
  taken.port = first->port();
  EXPECT_EQ(Server::Start(db, taken).status().code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace pigeonring::net
