// Unit, integration, and property tests for set similarity search
// (records, prefix scheme, pkwise/Ring, AllPairs and PartAlloc baselines).

#include "setsim/pkwise.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/token_sets.h"
#include "setsim/baselines.h"
#include "setsim/prefix.h"
#include "setsim/record.h"

namespace pigeonring::setsim {
namespace {

using datagen::GenerateTokenSets;
using datagen::TokenSetConfig;

// ---------------------------------------------------------------------------
// Record-level primitives.
// ---------------------------------------------------------------------------

TEST(RecordTest, OverlapByMerge) {
  EXPECT_EQ(Overlap({1, 3, 5, 7}, {3, 4, 5, 9}), 2);
  EXPECT_EQ(Overlap({}, {1, 2}), 0);
  EXPECT_EQ(Overlap({1, 2, 3}, {1, 2, 3}), 3);
  EXPECT_EQ(Overlap({1, 2}, {3, 4}), 0);
}

TEST(RecordTest, OverlapAtLeastAgreesWithExactOverlap) {
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    RankedSet x, y;
    for (int i = 0; i < 30; ++i) {
      if (rng.NextBernoulli(0.4)) x.push_back(i);
      if (rng.NextBernoulli(0.4)) y.push_back(i);
    }
    const int exact = Overlap(x, y);
    for (int required = 0; required <= 12; ++required) {
      EXPECT_EQ(OverlapAtLeast(x, y, required), exact >= required)
          << "required=" << required;
    }
  }
}

TEST(RecordTest, JaccardThresholdConversion) {
  // J >= tau  <=>  O >= ceil((|x|+|y|) tau / (1+tau)): check on enumerated
  // small cases.
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    RankedSet x, y;
    for (int i = 0; i < 16; ++i) {
      if (rng.NextBernoulli(0.5)) x.push_back(i);
      if (rng.NextBernoulli(0.5)) y.push_back(i);
    }
    if (x.empty() || y.empty()) continue;
    for (double tau : {0.5, 0.7, 0.8, 0.95}) {
      const int o = JaccardOverlapThreshold(static_cast<int>(x.size()),
                                            static_cast<int>(y.size()), tau);
      EXPECT_EQ(Jaccard(x, y) >= tau - 1e-12, Overlap(x, y) >= o);
    }
  }
}

TEST(RecordTest, CollectionRanksByIncreasingFrequency) {
  // Token 7 appears in three records, token 5 in two, token 9 in one:
  // ranks must order 9 < 5 < 7 (rarest first).
  SetCollection collection({{7, 5}, {7, 5, 9}, {7}});
  // Record 2 = {7} must map to the largest rank.
  ASSERT_EQ(collection.record(2).size(), 1u);
  const int rank7 = collection.record(2)[0];
  EXPECT_EQ(rank7, 2);
  EXPECT_EQ(collection.universe_size(), 3);
}

TEST(RecordTest, MapQueryHandlesUnknownTokens) {
  SetCollection collection({{1, 2}, {2, 3}});
  const RankedSet mapped = collection.MapQuery({2, 99, 1});
  EXPECT_EQ(mapped.size(), 3u);
  // Exactly one negative (unknown) rank.
  int negatives = 0;
  for (int r : mapped) negatives += (r < 0) ? 1 : 0;
  EXPECT_EQ(negatives, 1);
}

TEST(RecordTest, RecordsAreDeduplicated) {
  SetCollection collection({{4, 4, 4, 2}});
  EXPECT_EQ(collection.record(0).size(), 2u);
}

// ---------------------------------------------------------------------------
// Prefix scheme.
// ---------------------------------------------------------------------------

TEST(PrefixTest, ThresholdsSumToOverlapPlusBoxesMinusOne) {
  // ||T||_1 = o + m - 1 (the >= integer-reduction budget), also after
  // deficit reduction.
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    const int num_classes = 1 + static_cast<int>(rng.NextBounded(6));
    const int size = 1 + static_cast<int>(rng.NextBounded(40));
    RankedSet tokens;
    int next = 0;
    for (int i = 0; i < size; ++i) {
      next += 1 + static_cast<int>(rng.NextBounded(3));
      tokens.push_back(next);
    }
    const int o = 1 + static_cast<int>(rng.NextBounded(size));
    const PrefixInfo info = ComputePrefixInfo(tokens, o, num_classes);
    int sum = info.suffix_threshold;
    for (int k = 1; k <= num_classes; ++k) {
      sum += info.class_threshold[k];
      EXPECT_GE(info.class_threshold[k], 1);
      EXPECT_LE(info.class_threshold[k], k);
    }
    EXPECT_LE(sum, o + num_classes);  // = o + m - 1, m = classes + 1
    // Without deficit the sum is exact.
    if (info.prefix_length < size) {
      EXPECT_EQ(sum, o + num_classes);
    }
  }
}

TEST(PrefixTest, PrefixShrinksAsOverlapGrows) {
  RankedSet tokens;
  for (int i = 0; i < 20; ++i) tokens.push_back(i);
  int prev = 21;
  for (int o = 1; o <= 20; ++o) {
    const PrefixInfo info = ComputePrefixInfo(tokens, o, 4);
    EXPECT_LE(info.prefix_length, prev);
    prev = info.prefix_length;
  }
  // o = |x| needs |x| - o + 1 = 1 unit: a single class-1 token suffices
  // eventually.
  EXPECT_GE(prev, 1);
}

TEST(PrefixTest, ChainBoundUsesIntegerReductionSlack) {
  RankedSet tokens = {0, 1, 2, 3, 4, 5, 6, 7};
  const PrefixInfo info = ComputePrefixInfo(tokens, 4, 3);
  // Bound(start, 1) = t_start; Bound(start, 2) = t_s + t_{s+1} - 1.
  EXPECT_EQ(info.ChainBound(1, 1), info.class_threshold[1]);
  EXPECT_EQ(info.ChainBound(1, 2),
            info.class_threshold[1] + info.class_threshold[2] - 1);
  EXPECT_EQ(info.ChainBound(3, 2),
            info.class_threshold[3] + info.suffix_threshold - 1);
}

// ---------------------------------------------------------------------------
// End-to-end correctness: every searcher must equal brute force.
// ---------------------------------------------------------------------------

struct SetSimCase {
  int avg_tokens;
  double tau;
  int num_boxes;
  int chain_length;
};

class SetSimCorrectness : public ::testing::TestWithParam<SetSimCase> {};

TEST_P(SetSimCorrectness, AllSearchersMatchBruteForce) {
  const auto [avg_tokens, tau, num_boxes, chain_length] = GetParam();
  TokenSetConfig config;
  config.num_records = 1500;
  config.avg_tokens = avg_tokens;
  config.universe_size = 4000;
  config.duplicate_fraction = 0.4;
  config.seed = 100 + avg_tokens;
  const auto raw = GenerateTokenSets(config);
  SetCollection collection(raw);
  PkwiseSearcher ring(&collection, tau, num_boxes);
  AllPairsSearcher allpairs(&collection, tau);
  PartAllocSearcher partalloc(&collection, tau, num_boxes - 1);
  Rng rng(17);
  for (int i = 0; i < 15; ++i) {
    const RankedSet& query =
        collection.record(rng.NextBounded(collection.num_records()));
    const auto expected = BruteForceJaccardSearch(collection, query, tau);
    EXPECT_EQ(ring.Search(query, chain_length), expected)
        << "pkwise/Ring l=" << chain_length;
    EXPECT_EQ(allpairs.Search(query), expected) << "AllPairs";
    EXPECT_EQ(partalloc.Search(query), expected) << "PartAlloc";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetSimCorrectness,
    ::testing::Values(SetSimCase{14, 0.7, 5, 1}, SetSimCase{14, 0.7, 5, 2},
                      SetSimCase{14, 0.7, 5, 5}, SetSimCase{14, 0.9, 5, 2},
                      SetSimCase{14, 0.5, 4, 3}, SetSimCase{40, 0.8, 5, 2},
                      SetSimCase{40, 0.8, 8, 4}, SetSimCase{6, 0.6, 5, 2},
                      SetSimCase{3, 0.5, 5, 2}),
    [](const ::testing::TestParamInfo<SetSimCase>& info) {
      return "avg" + std::to_string(info.param.avg_tokens) + "_tau" +
             std::to_string(static_cast<int>(info.param.tau * 100)) + "_m" +
             std::to_string(info.param.num_boxes) + "_l" +
             std::to_string(info.param.chain_length);
    });

TEST(SetSimTest, RingCandidatesSubsetOfPkwise) {
  TokenSetConfig config;
  config.num_records = 3000;
  config.avg_tokens = 20;
  config.universe_size = 6000;
  config.duplicate_fraction = 0.4;
  config.seed = 23;
  SetCollection collection(GenerateTokenSets(config));
  PkwiseSearcher searcher(&collection, 0.7, 5);
  Rng rng(29);
  for (int i = 0; i < 10; ++i) {
    const RankedSet& query =
        collection.record(rng.NextBounded(collection.num_records()));
    int64_t prev = std::numeric_limits<int64_t>::max();
    std::vector<int> baseline_results;
    for (int l = 1; l <= 5; ++l) {
      SetSearchStats stats;
      auto results = searcher.Search(query, l, &stats);
      EXPECT_LE(stats.candidates, prev) << "l=" << l;
      EXPECT_GE(stats.candidates, stats.results);
      prev = stats.candidates;
      if (l == 1) {
        baseline_results = results;
      } else {
        EXPECT_EQ(results, baseline_results);
      }
    }
  }
}

TEST(SetSimTest, QueryFindsItself) {
  TokenSetConfig config;
  config.num_records = 500;
  config.avg_tokens = 10;
  config.universe_size = 1500;
  config.seed = 31;
  SetCollection collection(GenerateTokenSets(config));
  PkwiseSearcher searcher(&collection, 0.95, 5);
  for (int id : {0, 100, 499}) {
    auto results = searcher.Search(collection.record(id), 2);
    EXPECT_TRUE(std::find(results.begin(), results.end(), id) !=
                results.end());
  }
}

TEST(SetSimTest, DisjointQueryFindsNothing) {
  SetCollection collection({{1, 2, 3}, {2, 3, 4}, {5, 6}});
  PkwiseSearcher searcher(&collection, 0.5, 3);
  const RankedSet query = collection.MapQuery({100, 200, 300});
  EXPECT_TRUE(searcher.Search(query, 2).empty());
}

TEST(SetSimTest, TinySetsAndExtremeThresholds) {
  // Exercises the deficit-reduction path (records shorter than the class
  // structure) and tau = 1.0 (exact duplicates only).
  std::vector<std::vector<int>> raw = {
      {1}, {2}, {1, 2}, {1, 2, 3}, {1, 2, 3, 4}, {2, 3, 4}, {1}, {9}};
  SetCollection collection(raw);
  for (double tau : {0.3, 0.5, 1.0}) {
    PkwiseSearcher searcher(&collection, tau, 5);
    for (int id = 0; id < collection.num_records(); ++id) {
      const auto expected =
          BruteForceJaccardSearch(collection, collection.record(id), tau);
      for (int l : {1, 2, 3, 5}) {
        EXPECT_EQ(searcher.Search(collection.record(id), l), expected)
            << "tau=" << tau << " id=" << id << " l=" << l;
      }
    }
  }
}

struct OverlapCase {
  int overlap;
  int chain_length;
};

class OverlapSearchCorrectness
    : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(OverlapSearchCorrectness, MatchesBruteForce) {
  // The paper's Problem 3 as literally stated: |x ∩ q| >= tau with a fixed
  // integral threshold.
  const auto [overlap, chain_length] = GetParam();
  TokenSetConfig config;
  config.num_records = 1200;
  config.avg_tokens = 16;
  config.universe_size = 3000;
  config.duplicate_fraction = 0.4;
  config.seed = 321;
  SetCollection collection(GenerateTokenSets(config));
  PkwiseSearcher searcher(&collection, overlap, 5, SetMeasure::kOverlap);
  Rng rng(47);
  for (int i = 0; i < 12; ++i) {
    const RankedSet& query =
        collection.record(rng.NextBounded(collection.num_records()));
    EXPECT_EQ(searcher.Search(query, chain_length),
              BruteForceOverlapSearch(collection, query, overlap))
        << "overlap=" << overlap << " l=" << chain_length;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlapSearchCorrectness,
    ::testing::Values(OverlapCase{3, 1}, OverlapCase{3, 2}, OverlapCase{8, 1},
                      OverlapCase{8, 2}, OverlapCase{8, 5},
                      OverlapCase{14, 2}, OverlapCase{1, 2}),
    [](const ::testing::TestParamInfo<OverlapCase>& info) {
      return "o" + std::to_string(info.param.overlap) + "_l" +
             std::to_string(info.param.chain_length);
    });

TEST(SetSimTest, OverlapModeIgnoresSizeUpperBound) {
  // A tiny query can overlap-match a huge record; Jaccard cannot.
  std::vector<std::vector<int>> raw = {{1, 2, 3}};
  for (int i = 0; i < 60; ++i) raw[0].push_back(100 + i);  // one big record
  raw.push_back({1, 2, 3});
  SetCollection collection(raw);
  PkwiseSearcher overlap(&collection, 3, 3, SetMeasure::kOverlap);
  const auto results = overlap.Search(collection.record(1), 2);
  EXPECT_EQ(results, (std::vector<int>{0, 1}));
}

TEST(DatagenTest, TokenSetsDeterministicAndShaped) {
  TokenSetConfig config;
  config.num_records = 400;
  config.avg_tokens = 14;
  config.seed = 7;
  const auto a = GenerateTokenSets(config);
  const auto b = GenerateTokenSets(config);
  EXPECT_EQ(a, b);
  double total = 0;
  for (const auto& rec : a) {
    EXPECT_GE(rec.size(), 1u);
    total += rec.size();
  }
  const double avg = total / a.size();
  EXPECT_GT(avg, 7.0);
  EXPECT_LT(avg, 25.0);
}

TEST(DatagenTest, DuplicatesCreateHighJaccardPairs) {
  TokenSetConfig config;
  config.num_records = 800;
  config.avg_tokens = 20;
  config.duplicate_fraction = 0.5;
  config.perturb_rate = 0.05;
  config.seed = 41;
  SetCollection collection(GenerateTokenSets(config));
  int high_pairs = 0;
  for (int i = 0; i < 200; ++i) {
    for (int j = i + 1; j < 200; ++j) {
      if (Jaccard(collection.record(i), collection.record(j)) >= 0.8) {
        ++high_pairs;
      }
    }
  }
  EXPECT_GT(high_pairs, 0);
}

}  // namespace
}  // namespace pigeonring::setsim
