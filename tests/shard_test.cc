// Tests for sharded scatter-gather execution (src/shard/).
//
// The load-bearing suite is the byte-identity pin: for every domain
// (including the edit fast path), a Db opened with shards in {2, 4} must
// answer SearchBatch / Search / SelfJoin with exactly the ids, pairs, and
// deterministic counters of the unsharded (shards = 1) database, at
// several thread counts. The rest covers the partitioner's mapping and
// codec, the shards <-> records edge cases (empty collection, one record,
// more shards than records), the Save/OpenIndex shard-map round-trip, the
// per-shard monitoring surface, and a writer-churn test that runs under
// TSan in CI (sharded readers scattering while a writer mutates).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "api/db.h"
#include "api_test_util.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "shard/partitioner.h"
#include "storage/bytes.h"

namespace pigeonring::api {
namespace {

Db OpenOrDie(const IndexSpec& spec, Dataset dataset) {
  auto opened = Db::Open(spec, std::move(dataset));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

std::vector<BitVector> MakeVectors(int n, uint64_t seed) {
  datagen::BinaryVectorConfig config;
  config.dimensions = 64;
  config.num_objects = n;
  config.num_clusters = 12;
  config.cluster_fraction = 0.6;
  config.flip_rate = 0.05;
  config.seed = seed;
  return datagen::GenerateBinaryVectors(config);
}

std::vector<std::vector<int>> MakeSets(int n, uint64_t seed) {
  datagen::TokenSetConfig config;
  config.num_records = n;
  config.avg_tokens = 12;
  config.universe_size = 3 * n;
  config.duplicate_fraction = 0.4;
  config.seed = seed;
  return datagen::GenerateTokenSets(config);
}

std::vector<std::string> MakeStrings(int n, uint64_t seed, int fixed_length) {
  datagen::StringConfig config;
  config.num_records = n;
  config.avg_length = 14;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.fixed_length = fixed_length;
  config.seed = seed;
  return datagen::GenerateStrings(config);
}

std::vector<graphed::Graph> MakeGraphs(int n, uint64_t seed) {
  datagen::GraphConfig config;
  config.num_graphs = n;
  config.avg_vertices = 8;
  config.avg_edges = 9;
  config.vertex_labels = 8;
  config.duplicate_fraction = 0.4;
  config.max_perturb_ops = 2;
  config.seed = seed;
  return datagen::GenerateGraphs(config);
}

// One spec + dataset per domain; the edit domain appears twice (pivotal
// grams and the fixed-length fast path are distinct index structures, so
// both get the identity pin).
struct DomainCase {
  std::string name;
  IndexSpec spec;
  Dataset dataset;
};

std::vector<DomainCase> MakeDomainCases(int n) {
  std::vector<DomainCase> cases;
  {
    IndexSpec spec;
    spec.domain = Domain::kHamming;
    spec.tau = 8;
    spec.chain_length = 3;
    cases.push_back({"hamming", spec, MakeVectors(n, 71)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kSet;
    spec.tau = 0.5;
    spec.chain_length = 2;
    cases.push_back({"sets", spec, MakeSets(n, 72)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kEdit;
    spec.tau = 2;
    spec.chain_length = 2;
    spec.edit_fast_path = EditFastPath::kOff;
    cases.push_back({"strings", spec, MakeStrings(n, 73, 0)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kEdit;
    spec.tau = 2;
    spec.chain_length = 2;
    spec.edit_fast_path = EditFastPath::kOn;
    cases.push_back({"strings_fast", spec, MakeStrings(n, 74, 12)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kGraph;
    spec.tau = 2;
    spec.chain_length = 2;
    cases.push_back({"graphs", spec, MakeGraphs(n, 75)});
  }
  return cases;
}

// Every record viewed as a query — the paper's protocol, and it exercises
// every shard both as probe source and as candidate pool.
std::vector<Query> RecordQueries(const Db& db) {
  std::vector<Query> queries;
  for (int id = 0; id < db.num_records(); ++id) {
    auto query = db.RecordQuery(id);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    queries.push_back(std::move(query).value());
  }
  return queries;
}

// The identity pin: `sharded` must reproduce `unsharded`'s ids, pairs,
// and deterministic counters exactly, at 1 and at several threads.
void ExpectShardedMatchesUnsharded(const Db& unsharded, const Db& sharded) {
  ASSERT_EQ(sharded.num_records(), unsharded.num_records());
  Session baseline = unsharded.NewSession();
  Session session = sharded.NewSession();
  const std::vector<Query> queries = RecordQueries(unsharded);

  for (int threads : {1, 4}) {
    RunOptions options;
    options.num_threads = threads;

    auto expected = baseline.SearchBatch(queries, options);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto batch = session.SearchBatch(queries, options);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->ids, expected->ids);
    ExpectSameCounters(batch->stats, expected->stats);

    auto expected_join = baseline.SelfJoin(options);
    ASSERT_TRUE(expected_join.ok()) << expected_join.status().ToString();
    auto join = session.SelfJoin(options);
    ASSERT_TRUE(join.ok()) << join.status().ToString();
    EXPECT_EQ(join->pairs, expected_join->pairs);
    EXPECT_EQ(join->stats.pairs, expected_join->stats.pairs);
    EXPECT_EQ(join->stats.candidates, expected_join->stats.candidates);
  }

  if (!queries.empty()) {
    auto expected = baseline.Search(queries.front());
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto single = session.Search(queries.front());
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    EXPECT_EQ(single->ids, expected->ids);
    ExpectSameCounters(single->stats, expected->stats);
  }
}

TEST(ShardIdentityTest, AllDomainsMatchUnshardedAtEveryShardCount) {
  for (DomainCase& domain_case : MakeDomainCases(240)) {
    SCOPED_TRACE(domain_case.name);
    Db unsharded = OpenOrDie(domain_case.spec, domain_case.dataset);
    for (int shards : {2, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      IndexSpec spec = domain_case.spec;
      spec.shards = shards;
      Db sharded = OpenOrDie(spec, domain_case.dataset);
      EXPECT_EQ(sharded.spec().shards, shards);
      ExpectShardedMatchesUnsharded(unsharded, sharded);
    }
  }
}

TEST(ShardEdgeTest, EmptySingleRecordAndMoreShardsThanRecords) {
  for (int n : {0, 1, 3}) {
    SCOPED_TRACE("records=" + std::to_string(n));
    for (DomainCase& domain_case : MakeDomainCases(std::max(n, 1))) {
      if (n == 0 && domain_case.name == "strings_fast") {
        // An empty collection resolves edit_fast_path=kOn away only via
        // kAuto; forcing kOn on empty data is legal but builds no cases —
        // the pivotal case already covers empty strings here.
        continue;
      }
      SCOPED_TRACE(domain_case.name);
      Dataset dataset = std::visit(
          [n](const auto& records) {
            using T = std::decay_t<decltype(records)>;
            return Dataset(T(records.begin(), records.begin() + n));
          },
          domain_case.dataset);
      Db unsharded = OpenOrDie(domain_case.spec, dataset);
      // 8 shards over <= 3 records: most shards are empty.
      IndexSpec spec = domain_case.spec;
      spec.shards = 8;
      Db sharded = OpenOrDie(spec, dataset);
      ExpectShardedMatchesUnsharded(unsharded, sharded);
    }
  }
}

TEST(ShardSpecTest, ValidateRejectsOutOfRangeShards) {
  IndexSpec spec;
  spec.domain = Domain::kHamming;
  spec.tau = 4;
  for (int shards : {0, -3, shard::kMaxShards + 1}) {
    spec.shards = shards;
    auto opened = Db::Open(spec, Dataset(MakeVectors(4, 9)));
    EXPECT_FALSE(opened.ok());
    EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument)
        << opened.status().ToString();
  }
}

TEST(ShardStatsTest, SizesAndPendingDeltaPartitionTheDatabase) {
  IndexSpec spec;
  spec.domain = Domain::kHamming;
  spec.tau = 4;
  spec.shards = 4;
  const auto vectors = MakeVectors(10, 31);
  Db db = OpenOrDie(spec, Dataset(vectors));

  // 10 records round-robin over 4 shards: 3, 3, 2, 2.
  EXPECT_EQ(db.ShardSizes(), (std::vector<int>{3, 3, 2, 2}));

  auto writer = db.NewWriter();
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  // Insert ids 10 and 11 -> shards 2 and 3; remove base id 0 -> shard 0.
  ASSERT_TRUE(writer->Insert(Query(vectors[0])).ok());
  ASSERT_TRUE(writer->Insert(Query(vectors[1])).ok());
  ASSERT_TRUE(writer->Remove(0).ok());
  const std::vector<DbShardStat> stats = db.ShardStats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].records, 3);
  EXPECT_EQ(stats[0].pending_delta, 1);
  EXPECT_EQ(stats[1].pending_delta, 0);
  EXPECT_EQ(stats[2].pending_delta, 1);
  EXPECT_EQ(stats[3].pending_delta, 1);

  // Unsharded databases report a single all-covering entry.
  IndexSpec flat = spec;
  flat.shards = 1;
  Db unsharded = OpenOrDie(flat, Dataset(vectors));
  EXPECT_EQ(unsharded.ShardSizes(), (std::vector<int>{10}));
  EXPECT_EQ(unsharded.ShardStats().size(), 1u);
}

TEST(ShardPersistTest, SaveRecordsShardMapAndOpenIndexAdoptsIt) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pigeonring_shard_test";
  std::filesystem::create_directories(dir);
  const std::string sharded_path = (dir / "sharded.idx").string();
  const std::string flat_path = (dir / "flat.idx").string();

  IndexSpec spec;
  spec.domain = Domain::kHamming;
  spec.tau = 8;
  const auto vectors = MakeVectors(60, 77);

  IndexSpec sharded_spec = spec;
  sharded_spec.shards = 4;
  Db sharded = OpenOrDie(sharded_spec, Dataset(vectors));
  ASSERT_TRUE(sharded.Save(sharded_path).ok());
  Db flat = OpenOrDie(spec, Dataset(vectors));
  ASSERT_TRUE(flat.Save(flat_path).ok());

  // Default spec adopts the persisted shard count; explicit shards > 1
  // overrides it; an unsharded file opens unsharded.
  auto adopted = Db::OpenIndex(spec, sharded_path);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted->spec().shards, 4);
  EXPECT_EQ(adopted->ShardSizes().size(), 4u);

  IndexSpec override_spec = spec;
  override_spec.shards = 2;
  auto overridden = Db::OpenIndex(override_spec, sharded_path);
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  EXPECT_EQ(overridden->spec().shards, 2);

  auto flat_reopened = Db::OpenIndex(spec, flat_path);
  ASSERT_TRUE(flat_reopened.ok()) << flat_reopened.status().ToString();
  EXPECT_EQ(flat_reopened->spec().shards, 1);

  // Either way the answers match the in-memory database.
  ExpectShardedMatchesUnsharded(flat, *adopted);
  ExpectShardedMatchesUnsharded(flat, *overridden);

  std::filesystem::remove_all(dir);
}

// --- shard::Partitioner unit coverage ---

TEST(PartitionerTest, BothModesPartitionEveryIdExactlyOnceAscending) {
  for (shard::PlacementMode mode :
       {shard::PlacementMode::kRoundRobin, shard::PlacementMode::kHash}) {
    const shard::Partitioner partitioner(mode, 5);
    const auto owned = partitioner.Partition(137);
    ASSERT_EQ(owned.size(), 5u);
    std::set<int> seen;
    for (int s = 0; s < 5; ++s) {
      EXPECT_TRUE(std::is_sorted(owned[s].begin(), owned[s].end()));
      for (int g : owned[s]) {
        EXPECT_EQ(partitioner.ShardOf(g), s);
        EXPECT_TRUE(seen.insert(g).second) << "id " << g << " owned twice";
      }
    }
    EXPECT_EQ(seen.size(), 137u);
    // Round-robin balance is exact: shard sizes differ by at most one.
    if (mode == shard::PlacementMode::kRoundRobin) {
      for (const auto& ids : owned) {
        EXPECT_GE(static_cast<int>(ids.size()), 137 / 5);
        EXPECT_LE(static_cast<int>(ids.size()), 137 / 5 + 1);
      }
    }
  }
}

TEST(PartitionerTest, EncodeDecodeRoundTripsAndRejectsMalformedBytes) {
  const shard::Partitioner original(shard::PlacementMode::kHash, 7);
  storage::ByteWriter w;
  original.Encode(w);
  const std::vector<uint8_t> bytes = std::move(w).Take();

  storage::ByteReader r(bytes.data(), bytes.size());
  shard::Partitioner decoded;
  ASSERT_TRUE(decoded.Decode(r));
  EXPECT_EQ(decoded, original);

  // Unknown mode, out-of-range shard counts, truncation, trailing bytes.
  const auto rejects = [](std::vector<uint8_t> image) {
    storage::ByteReader reader(image.data(), image.size());
    shard::Partitioner p;
    return !p.Decode(reader);
  };
  const auto encode = [](uint32_t mode, uint32_t shards) {
    storage::ByteWriter bad;
    bad.U32(mode);
    bad.U32(shards);
    return std::move(bad).Take();
  };
  EXPECT_TRUE(rejects(encode(2, 4)));
  EXPECT_TRUE(rejects(encode(0, 0)));
  EXPECT_TRUE(rejects(encode(0, 1)));
  EXPECT_TRUE(rejects(encode(0, shard::kMaxShards + 1)));
  EXPECT_TRUE(rejects(std::vector<uint8_t>(bytes.begin(), bytes.end() - 1)));
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_TRUE(rejects(trailing));
}

// --- churn under sharding (runs under TSan in CI) ---
//
// Readers continuously mint sessions and scatter batches over a sharded
// database while a writer inserts and removes; after quiescing and
// compacting, the sharded database must answer identically to an
// unsharded cold open over the surviving records.

TEST(ShardChurnTest, ScatterReadersRaceWriterThenConvergeToColdRebuild) {
  constexpr int kBase = 24;
  constexpr int kInsertPool = 16;
  const auto vectors = MakeVectors(kBase + kInsertPool, 55);

  IndexSpec spec;
  spec.domain = Domain::kHamming;
  spec.tau = 8;
  spec.shards = 3;
  spec.delta_compact_threshold = 8;
  Db db = OpenOrDie(
      spec, Dataset(std::vector<BitVector>(vectors.begin(),
                                           vectors.begin() + kBase)));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&db, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        Session session = db.NewSession();
        std::vector<Query> queries;
        for (int id = 0; id < std::min(db.num_records(), 8); ++id) {
          auto query = session.RecordQuery(id);
          if (query.ok()) queries.push_back(std::move(query).value());
        }
        if (queries.empty()) continue;
        RunOptions options;
        options.num_threads = 2;
        auto first = session.SearchBatch(queries, options);
        ASSERT_TRUE(first.ok()) << first.status().ToString();
        // A session's view is frozen: identical re-run, identical answer.
        auto second = session.SearchBatch(queries, options);
        ASSERT_TRUE(second.ok()) << second.status().ToString();
        ASSERT_EQ(first->ids, second->ids);
      }
    });
  }

  {
    auto writer = db.NewWriter();
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int k = 0; k < kInsertPool; ++k) {
      ASSERT_TRUE(writer->Insert(Query(vectors[kBase + k])).ok());
      if (k % 3 == 0) {
        ASSERT_TRUE(writer->Remove(k).ok());
      }
    }
    ASSERT_TRUE(writer->Compact().ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // Quiesced: rebuild the surviving dataset through RecordQuery and pin
  // the sharded database against an unsharded cold open over it.
  std::vector<BitVector> survivors;
  for (int id = 0; id < db.num_records(); ++id) {
    auto query = db.RecordQuery(id);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    survivors.push_back(std::get<BitVector>(std::move(query).value()));
  }
  IndexSpec flat = spec;
  flat.shards = 1;
  flat.delta_compact_threshold = 0;
  Db cold = OpenOrDie(flat, Dataset(survivors));
  ExpectShardedMatchesUnsharded(cold, db);
}

}  // namespace
}  // namespace pigeonring::api
