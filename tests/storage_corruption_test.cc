// Corruption-injection tests for the persistent index format. Every
// hostile mutation of a valid index file must surface as the documented
// typed Status — kDataLoss for checksum/truncation/structural damage,
// kFailedPrecondition for version or spec mismatches, kInvalidArgument
// for non-index bytes — and must never crash or return partially loaded
// data (the suite runs under ASan/UBSan in CI).
//
// Mutations exercised, per domain:
//   * truncation at every section boundary (and a few interior offsets);
//   * a flipped byte inside every section payload;
//   * a zeroed TOC;
//   * a stale format version (header CRC repaired, so only the version
//     check can reject it);
//   * a mismatched spec fingerprint (header CRC repaired);
//   * corrupted magic;
//   * a missing / unreadable path.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/status.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "storage/crc32c.h"
#include "storage/index_file.h"

namespace pigeonring::api {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// One valid saved index per domain, built once for the whole suite.
struct DomainIndex {
  const char* name;
  IndexSpec spec;
  std::vector<uint8_t> image;
};

std::vector<DomainIndex> BuildAllDomains() {
  std::vector<DomainIndex> indexes;

  {
    IndexSpec spec;
    spec.domain = Domain::kHamming;
    spec.tau = 6;
    spec.chain_length = 2;
    spec.num_parts = 8;
    datagen::BinaryVectorConfig config;
    config.dimensions = 64;
    config.num_objects = 80;
    config.num_clusters = 8;
    config.seed = 91;
    auto db =
        Db::Open(spec, Dataset(datagen::GenerateBinaryVectors(config)));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    const std::string path = TempPath("corrupt_base_hamming.pgri");
    EXPECT_TRUE(db->Save(path).ok());
    indexes.push_back({"hamming", spec, ReadFile(path)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kSet;
    spec.tau = 0.7;
    spec.chain_length = 2;
    datagen::TokenSetConfig config;
    config.num_records = 80;
    config.avg_tokens = 10;
    config.universe_size = 240;
    config.seed = 92;
    auto db = Db::Open(spec, Dataset(datagen::GenerateTokenSets(config)));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    const std::string path = TempPath("corrupt_base_sets.pgri");
    EXPECT_TRUE(db->Save(path).ok());
    indexes.push_back({"sets", spec, ReadFile(path)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kEdit;
    spec.tau = 2;
    spec.chain_length = 2;
    spec.kappa = 2;
    datagen::StringConfig config;
    config.num_records = 80;
    config.avg_length = 12;
    config.seed = 93;
    auto db = Db::Open(spec, Dataset(datagen::GenerateStrings(config)));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    const std::string path = TempPath("corrupt_base_strings.pgri");
    EXPECT_TRUE(db->Save(path).ok());
    indexes.push_back({"strings", spec, ReadFile(path)});
  }
  {
    // The fixed-length fast path: its kEditFast* sections get the same
    // hostile-mutation coverage as every other domain's sections.
    IndexSpec spec;
    spec.domain = Domain::kEdit;
    spec.tau = 3;
    spec.chain_length = 2;
    spec.edit_fast_path = EditFastPath::kOn;
    datagen::StringConfig config;
    config.num_records = 80;
    config.fixed_length = 10;
    config.seed = 95;
    auto db = Db::Open(spec, Dataset(datagen::GenerateStrings(config)));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    const std::string path = TempPath("corrupt_base_strings_fast.pgri");
    EXPECT_TRUE(db->Save(path).ok());
    indexes.push_back({"strings_fast", spec, ReadFile(path)});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kGraph;
    spec.tau = 1;
    spec.chain_length = 2;
    datagen::GraphConfig config;
    config.num_graphs = 40;
    config.avg_vertices = 7;
    config.avg_edges = 8;
    config.vertex_labels = 6;
    config.seed = 94;
    auto db = Db::Open(spec, Dataset(datagen::GenerateGraphs(config)));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    const std::string path = TempPath("corrupt_base_graphs.pgri");
    EXPECT_TRUE(db->Save(path).ok());
    indexes.push_back({"graphs", spec, ReadFile(path)});
  }
  return indexes;
}

const std::vector<DomainIndex>& AllDomains() {
  static const std::vector<DomainIndex>* indexes =
      new std::vector<DomainIndex>(BuildAllDomains());
  return *indexes;
}

// Writes `image` to a scratch file and opens it via Db::OpenIndex,
// expecting the given error code. The message must be non-empty — every
// rejection explains itself.
void ExpectOpenFails(const DomainIndex& base, std::vector<uint8_t> image,
                     StatusCode code, const std::string& label) {
  SCOPED_TRACE(std::string(base.name) + ": " + label);
  const std::string path = TempPath("corrupt_scratch.pgri");
  WriteFile(path, image);
  auto db = Db::OpenIndex(base.spec, path);
  ASSERT_FALSE(db.ok()) << "corrupted image opened successfully";
  EXPECT_EQ(db.status().code(), code) << db.status().ToString();
  EXPECT_FALSE(db.status().message().empty());
}

void PatchU32(std::vector<uint8_t>& image, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    image[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

void PatchU64(std::vector<uint8_t>& image, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    image[offset + i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

// Section boundaries of a valid image, via the reader's own TOC view.
std::vector<std::pair<storage::SectionId, std::pair<uint64_t, uint64_t>>>
SectionRangesOf(const std::vector<uint8_t>& image) {
  auto reader = storage::IndexFileReader::OpenFromBuffer(image);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return reader->SectionRanges();
}

TEST(StorageCorruptionTest, TruncationAtEverySectionBoundary) {
  for (const DomainIndex& base : AllDomains()) {
    const auto ranges = SectionRangesOf(base.image);
    ASSERT_FALSE(ranges.empty());
    // Every section start and end, plus the header boundary and a cut
    // mid-way into the first section's payload.
    std::vector<uint64_t> cuts = {storage::kHeaderSize,
                                  storage::kHeaderSize / 2};
    for (const auto& [id, range] : ranges) {
      cuts.push_back(range.first);
      cuts.push_back(range.second);
      cuts.push_back(range.first + (range.second - range.first) / 2);
    }
    for (uint64_t cut : cuts) {
      if (cut >= base.image.size()) continue;
      std::vector<uint8_t> truncated(base.image.begin(),
                                     base.image.begin() + cut);
      ExpectOpenFails(base, std::move(truncated), StatusCode::kDataLoss,
                      "truncated at " + std::to_string(cut));
    }
    // Trailing garbage (file longer than the header claims) is damage too.
    std::vector<uint8_t> padded = base.image;
    padded.resize(padded.size() + 17, 0xAB);
    ExpectOpenFails(base, std::move(padded), StatusCode::kDataLoss,
                    "trailing garbage");
  }
}

TEST(StorageCorruptionTest, FlippedByteInEverySection) {
  for (const DomainIndex& base : AllDomains()) {
    for (const auto& [id, range] : SectionRangesOf(base.image)) {
      if (range.second == range.first) continue;  // empty payload
      const uint64_t victim = range.first + (range.second - range.first) / 2;
      std::vector<uint8_t> flipped = base.image;
      flipped[victim] ^= 0x40;
      ExpectOpenFails(
          base, std::move(flipped), StatusCode::kDataLoss,
          "byte flip in section " +
              std::to_string(static_cast<uint32_t>(id)));
    }
  }
}

// A flipped payload byte whose section CRC has been "helpfully" repaired
// must still never crash: it reaches the section decoder, which either
// rejects the value (kDataLoss / kFailedPrecondition) or decodes a
// different-but-well-formed index. This drives the decoder validation
// paths the container checksums would otherwise shadow.
TEST(StorageCorruptionTest, RepairedCrcReachesDecoderValidation) {
  for (const DomainIndex& base : AllDomains()) {
    const auto ranges = SectionRangesOf(base.image);
    // TOC location, for re-checksumming after each payload edit.
    auto toc_offset = [&](const std::vector<uint8_t>& image) {
      uint64_t value = 0;
      for (int i = 0; i < 8; ++i) {
        value |= static_cast<uint64_t>(image[storage::kTocOffsetOffset + i])
                 << (8 * i);
      }
      return value;
    };
    const uint64_t toc = toc_offset(base.image);
    for (size_t s = 0; s < ranges.size(); ++s) {
      const auto& [id, range] = ranges[s];
      if (range.second == range.first) continue;
      for (uint64_t delta :
           {uint64_t{0}, (range.second - range.first) / 2}) {
        std::vector<uint8_t> image = base.image;
        image[range.first + delta] ^= 0xFF;
        const uint32_t crc =
            storage::Crc32c(image.data() + range.first,
                            static_cast<size_t>(range.second - range.first));
        // Patch this section's TOC entry CRC, then the TOC CRC, then the
        // header CRC — the file is now "valid" down to the decoder.
        const size_t entry = toc + s * storage::kTocEntrySize;
        PatchU32(image, entry + 24, crc);
        const uint32_t toc_crc = storage::Crc32c(
            image.data() + toc,
            ranges.size() * storage::kTocEntrySize);
        PatchU32(image, storage::kTocCrcOffset, toc_crc);
        storage::RepairHeaderCrc(image);

        SCOPED_TRACE(std::string(base.name) + ": decoder-level flip in " +
                     std::to_string(static_cast<uint32_t>(id)) + "+" +
                     std::to_string(delta));
        const std::string path = TempPath("corrupt_scratch.pgri");
        WriteFile(path, image);
        auto db = Db::OpenIndex(base.spec, path);
        if (!db.ok()) {
          EXPECT_TRUE(db.status().code() == StatusCode::kDataLoss ||
                      db.status().code() == StatusCode::kFailedPrecondition ||
                      db.status().code() == StatusCode::kInvalidArgument)
              << db.status().ToString();
          EXPECT_FALSE(db.status().message().empty());
        }
        // db.ok() is acceptable: some byte flips decode to a different but
        // structurally valid index. The invariant is "no crash, no abort".
      }
    }
  }
}

TEST(StorageCorruptionTest, ZeroedToc) {
  for (const DomainIndex& base : AllDomains()) {
    const uint64_t toc = [&] {
      uint64_t value = 0;
      for (int i = 0; i < 8; ++i) {
        value |= static_cast<uint64_t>(
                     base.image[storage::kTocOffsetOffset + i])
                 << (8 * i);
      }
      return value;
    }();
    std::vector<uint8_t> image = base.image;
    for (size_t i = toc; i < image.size(); ++i) image[i] = 0;
    ExpectOpenFails(base, std::move(image), StatusCode::kDataLoss,
                    "zeroed TOC");
  }
}

TEST(StorageCorruptionTest, StaleFormatVersion) {
  for (const DomainIndex& base : AllDomains()) {
    for (uint32_t version : {storage::kFormatVersion + 1, uint32_t{0},
                             uint32_t{0xDEADBEEF}}) {
      std::vector<uint8_t> image = base.image;
      PatchU32(image, storage::kVersionOffset, version);
      storage::RepairHeaderCrc(image);
      ExpectOpenFails(base, std::move(image),
                      StatusCode::kFailedPrecondition,
                      "format version " + std::to_string(version));
    }
  }
}

TEST(StorageCorruptionTest, MismatchedFingerprint) {
  for (const DomainIndex& base : AllDomains()) {
    std::vector<uint8_t> image = base.image;
    PatchU64(image, storage::kFingerprintOffset, 0x1234567890ABCDEFULL);
    storage::RepairHeaderCrc(image);
    ExpectOpenFails(base, std::move(image), StatusCode::kFailedPrecondition,
                    "tampered fingerprint");
  }
}

// Opening an index under a *different spec* (the honest version of the
// fingerprint mismatch) names the disagreeing build field.
TEST(StorageCorruptionTest, SpecMismatchIsNamed) {
  const DomainIndex& base = AllDomains().front();  // hamming, tau=6
  const std::string path = TempPath("corrupt_spec.pgri");
  WriteFile(path, base.image);

  IndexSpec wrong_tau = base.spec;
  wrong_tau.tau = 7;
  auto db = Db::OpenIndex(wrong_tau, path);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(db.status().message().find("tau"), std::string::npos)
      << db.status().ToString();

  IndexSpec wrong_parts = base.spec;
  wrong_parts.num_parts = 4;
  db = Db::OpenIndex(wrong_parts, path);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(db.status().message().find("num_parts"), std::string::npos)
      << db.status().ToString();

  IndexSpec wrong_domain = base.spec;
  wrong_domain.domain = Domain::kEdit;
  wrong_domain.tau = 2;
  db = Db::OpenIndex(wrong_domain, path);
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StorageCorruptionTest, BadMagic) {
  const DomainIndex& base = AllDomains().front();
  std::vector<uint8_t> image = base.image;
  image[0] = 'X';
  ExpectOpenFails(base, std::move(image), StatusCode::kInvalidArgument,
                  "corrupted magic");

  // A short file that cannot even hold a header.
  ExpectOpenFails(base, {0x50, 0x47}, StatusCode::kInvalidArgument,
                  "two-byte file");
}

TEST(StorageCorruptionTest, MissingPath) {
  const DomainIndex& base = AllDomains().front();
  auto db = Db::OpenIndex(base.spec,
                          TempPath("does_not_exist") + "/nowhere.pgri");
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound)
      << db.status().ToString();
}

// A raw dataset handed to the strict index entry is kInvalidArgument (it
// has no index magic), while the sniffing Open falls back to the dataset
// loader and succeeds.
TEST(StorageCorruptionTest, RawDatasetIsNotAnIndex) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 1;
  const std::string path = TempPath("raw_strings.ds");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "alpha\nalbha\nbeta\n";
  }
  auto strict = Db::OpenIndex(spec, path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument)
      << strict.status().ToString();
  auto sniffed = Db::Open(spec, path);
  ASSERT_TRUE(sniffed.ok()) << sniffed.status().ToString();
  EXPECT_EQ(sniffed->num_records(), 3);
}

}  // namespace
}  // namespace pigeonring::api
