// Deterministic structure-aware fuzz smoke for the index loader, run as a
// plain CTest (bounded iterations, fixed seeds — every failure replays).
// The contract under test is the storage layer's hostile-input guarantee:
// for ANY byte string, IndexFileReader::OpenFromBuffer and Db::OpenIndex
// return a typed Status or a valid Db — never a crash, abort, hang, or
// unbounded allocation. ASan/UBSan in CI turn latent memory errors on
// these paths into failures.
//
// Three mutator families, from dumbest to most format-aware:
//   * random garbage buffers (header/magic parsing);
//   * byte flips / truncations / extensions of a valid image (container
//     checksum + geometry validation);
//   * "repaired" mutations that recompute section, TOC, and header CRCs
//     after each edit, so the payload reaches the section decoders (the
//     allocation guards and range checks in storage/index_io.cc).

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/random.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "storage/crc32c.h"
#include "storage/index_file.h"

namespace pigeonring::api {
namespace {

namespace fs = std::filesystem;

std::string ScratchPath() {
  return (fs::path(testing::TempDir()) / "fuzz_scratch.pgri").string();
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<uint8_t> bytes;
  for (std::istreambuf_iterator<char> it(in), end; it != end; ++it) {
    bytes.push_back(static_cast<uint8_t>(*it));
  }
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
}

// Every open must settle to ok or a typed error; nothing else to assert —
// the sanitizers and the process surviving are the test.
void ExpectSettles(const IndexSpec& spec, const std::vector<uint8_t>& image) {
  auto reader = storage::IndexFileReader::OpenFromBuffer(image);
  if (!reader.ok()) {
    EXPECT_FALSE(reader.status().message().empty());
  }
  const std::string path = ScratchPath();
  WriteFile(path, image);
  auto db = Db::OpenIndex(spec, path);
  if (!db.ok()) {
    EXPECT_FALSE(db.status().message().empty());
  }
}

std::vector<uint8_t> BaseImage(IndexSpec& spec_out) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.chain_length = 2;
  spec.kappa = 2;
  datagen::StringConfig config;
  config.num_records = 40;
  config.avg_length = 10;
  config.seed = 101;
  auto db = Db::Open(spec, Dataset(datagen::GenerateStrings(config)));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  const std::string path = ScratchPath();
  EXPECT_TRUE(db->Save(path).ok());
  spec_out = spec;
  return ReadFile(path);
}

TEST(StorageFuzzTest, RandomGarbageNeverCrashesTheParser) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.kappa = 2;
  Rng rng(0xF00DF00D);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> garbage(rng.NextBounded(512));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextBounded(256));
    }
    // Half the time, lead with the real magic so parsing goes deeper than
    // the magic check.
    if (iter % 2 == 0 && garbage.size() >= sizeof(storage::kMagic)) {
      for (size_t i = 0; i < sizeof(storage::kMagic); ++i) {
        garbage[i] = storage::kMagic[i];
      }
    }
    ExpectSettles(spec, garbage);
  }
}

TEST(StorageFuzzTest, MutatedImagesNeverCrashTheContainer) {
  IndexSpec spec;
  const std::vector<uint8_t> base = BaseImage(spec);
  Rng rng(0xB16B00B5);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> image = base;
    switch (rng.NextBounded(4)) {
      case 0: {  // flip 1..8 random bytes anywhere
        const int flips = 1 + static_cast<int>(rng.NextBounded(8));
        for (int f = 0; f < flips; ++f) {
          image[rng.NextBounded(image.size())] ^=
              static_cast<uint8_t>(1 + rng.NextBounded(255));
        }
        break;
      }
      case 1:  // truncate at a random offset
        image.resize(rng.NextBounded(image.size() + 1));
        break;
      case 2:  // extend with random tail bytes
        for (uint64_t n = rng.NextBounded(128); n > 0; --n) {
          image.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
        }
        break;
      default: {  // splice a random window to a random destination
        if (image.size() > storage::kHeaderSize) {
          const size_t src = rng.NextBounded(image.size());
          const size_t dst = rng.NextBounded(image.size());
          const size_t len =
              rng.NextBounded(std::min<size_t>(64, image.size()));
          for (size_t i = 0; i + std::max(src, dst) < image.size() &&
                             i < len;
               ++i) {
            image[dst + i] = base[src + i];
          }
        }
        break;
      }
    }
    ExpectSettles(spec, image);
  }
}

// Format-aware mutations: corrupt header fields or section payloads, then
// recompute every checksum on the way out so validation cannot stop at
// the container layer — the mutated bytes reach the TOC parser and the
// section decoders.
TEST(StorageFuzzTest, RepairedMutationsReachTheDecoders) {
  IndexSpec spec;
  const std::vector<uint8_t> base = BaseImage(spec);
  auto base_reader = storage::IndexFileReader::OpenFromBuffer(base);
  ASSERT_TRUE(base_reader.ok()) << base_reader.status().ToString();
  const auto ranges = base_reader->SectionRanges();
  ASSERT_FALSE(ranges.empty());

  auto read_u64 = [](const std::vector<uint8_t>& image, size_t offset) {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(image[offset + i]) << (8 * i);
    }
    return value;
  };
  const uint64_t toc = read_u64(base, storage::kTocOffsetOffset);

  auto repair = [&](std::vector<uint8_t>& image) {
    // Recompute every section CRC in the TOC, the TOC CRC, and the header
    // CRC, reading geometry from the (possibly mutated) TOC itself so the
    // repairs track the mutation instead of undoing it.
    for (size_t s = 0; s < ranges.size(); ++s) {
      const size_t entry =
          static_cast<size_t>(toc) + s * storage::kTocEntrySize;
      if (entry + storage::kTocEntrySize > image.size()) break;
      const uint64_t offset = read_u64(image, entry + 8);
      const uint64_t length = read_u64(image, entry + 16);
      if (offset <= image.size() && length <= image.size() - offset) {
        const uint32_t crc = storage::Crc32c(image.data() + offset,
                                             static_cast<size_t>(length));
        for (int i = 0; i < 4; ++i) {
          image[entry + 24 + i] = static_cast<uint8_t>(crc >> (8 * i));
        }
      }
    }
    if (toc + ranges.size() * storage::kTocEntrySize <= image.size()) {
      const uint32_t toc_crc =
          storage::Crc32c(image.data() + toc,
                          ranges.size() * storage::kTocEntrySize);
      for (int i = 0; i < 4; ++i) {
        image[storage::kTocCrcOffset + i] =
            static_cast<uint8_t>(toc_crc >> (8 * i));
      }
    }
    storage::RepairHeaderCrc(image);
  };

  Rng rng(0xCAFED00D);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<uint8_t> image = base;
    switch (rng.NextBounded(3)) {
      case 0: {  // scribble over a random section payload
        const auto& [id, range] =
            ranges[rng.NextBounded(ranges.size())];
        if (range.second > range.first) {
          const int edits = 1 + static_cast<int>(rng.NextBounded(16));
          for (int e = 0; e < edits; ++e) {
            const uint64_t at =
                range.first + rng.NextBounded(range.second - range.first);
            image[at] = static_cast<uint8_t>(rng.NextBounded(256));
          }
        }
        break;
      }
      case 1: {  // rewrite a TOC entry's id/offset/length fields
        const size_t entry =
            static_cast<size_t>(toc) +
            rng.NextBounded(ranges.size()) * storage::kTocEntrySize;
        for (int e = 0; e < 3; ++e) {
          image[entry + rng.NextBounded(24)] =
              static_cast<uint8_t>(rng.NextBounded(256));
        }
        break;
      }
      default: {  // scribble over a random header field
        const size_t at =
            storage::kVersionOffset +
            rng.NextBounded(storage::kHeaderCrcOffset -
                            storage::kVersionOffset);
        image[at] = static_cast<uint8_t>(rng.NextBounded(256));
        break;
      }
    }
    repair(image);
    ExpectSettles(spec, image);
  }
}

// The same repaired-mutation hammer against the set domain, whose decoder
// has the most cross-section invariants (dictionary vs records vs
// inverted-list geometry).
TEST(StorageFuzzTest, RepairedMutationsSetDomain) {
  IndexSpec spec;
  spec.domain = Domain::kSet;
  spec.tau = 0.6;
  spec.chain_length = 2;
  datagen::TokenSetConfig config;
  config.num_records = 40;
  config.avg_tokens = 8;
  config.universe_size = 120;
  config.seed = 102;
  auto db = Db::Open(spec, Dataset(datagen::GenerateTokenSets(config)));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const std::string path = ScratchPath();
  ASSERT_TRUE(db->Save(path).ok());
  const std::vector<uint8_t> base = ReadFile(path);

  auto reader = storage::IndexFileReader::OpenFromBuffer(base);
  ASSERT_TRUE(reader.ok());
  const auto ranges = reader->SectionRanges();
  auto read_u64 = [](const std::vector<uint8_t>& image, size_t offset) {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(image[offset + i]) << (8 * i);
    }
    return value;
  };
  const uint64_t toc = read_u64(base, storage::kTocOffsetOffset);

  Rng rng(0xDEADBEA7);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> image = base;
    const auto& [id, range] = ranges[rng.NextBounded(ranges.size())];
    if (range.second > range.first) {
      const int edits = 1 + static_cast<int>(rng.NextBounded(8));
      for (int e = 0; e < edits; ++e) {
        const uint64_t at =
            range.first + rng.NextBounded(range.second - range.first);
        image[at] = static_cast<uint8_t>(rng.NextBounded(256));
      }
    }
    for (size_t s = 0; s < ranges.size(); ++s) {
      const size_t entry =
          static_cast<size_t>(toc) + s * storage::kTocEntrySize;
      const uint64_t offset = read_u64(image, entry + 8);
      const uint64_t length = read_u64(image, entry + 16);
      const uint32_t crc = storage::Crc32c(image.data() + offset,
                                           static_cast<size_t>(length));
      for (int i = 0; i < 4; ++i) {
        image[entry + 24 + i] = static_cast<uint8_t>(crc >> (8 * i));
      }
    }
    const uint32_t toc_crc = storage::Crc32c(
        image.data() + toc, ranges.size() * storage::kTocEntrySize);
    for (int i = 0; i < 4; ++i) {
      image[storage::kTocCrcOffset + i] =
          static_cast<uint8_t>(toc_crc >> (8 * i));
    }
    storage::RepairHeaderCrc(image);
    ExpectSettles(spec, image);
  }
}

// And against the fixed-length fast path, whose decoder re-derives
// signature rows from the strings section and must therefore keep the
// strings / meta / postings sections mutually consistent under mutation.
TEST(StorageFuzzTest, RepairedMutationsEditFastDomain) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 3;
  spec.chain_length = 2;
  spec.edit_fast_path = EditFastPath::kOn;
  datagen::StringConfig config;
  config.num_records = 40;
  config.fixed_length = 10;
  config.seed = 103;
  auto db = Db::Open(spec, Dataset(datagen::GenerateStrings(config)));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const std::string path = ScratchPath();
  ASSERT_TRUE(db->Save(path).ok());
  const std::vector<uint8_t> base = ReadFile(path);

  auto reader = storage::IndexFileReader::OpenFromBuffer(base);
  ASSERT_TRUE(reader.ok());
  const auto ranges = reader->SectionRanges();
  auto read_u64 = [](const std::vector<uint8_t>& image, size_t offset) {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(image[offset + i]) << (8 * i);
    }
    return value;
  };
  const uint64_t toc = read_u64(base, storage::kTocOffsetOffset);

  Rng rng(0xFA57FA57);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> image = base;
    const auto& [id, range] = ranges[rng.NextBounded(ranges.size())];
    if (range.second > range.first) {
      const int edits = 1 + static_cast<int>(rng.NextBounded(8));
      for (int e = 0; e < edits; ++e) {
        const uint64_t at =
            range.first + rng.NextBounded(range.second - range.first);
        image[at] = static_cast<uint8_t>(rng.NextBounded(256));
      }
    }
    for (size_t s = 0; s < ranges.size(); ++s) {
      const size_t entry =
          static_cast<size_t>(toc) + s * storage::kTocEntrySize;
      const uint64_t offset = read_u64(image, entry + 8);
      const uint64_t length = read_u64(image, entry + 16);
      const uint32_t crc = storage::Crc32c(image.data() + offset,
                                           static_cast<size_t>(length));
      for (int i = 0; i < 4; ++i) {
        image[entry + 24 + i] = static_cast<uint8_t>(crc >> (8 * i));
      }
    }
    const uint32_t toc_crc = storage::Crc32c(
        image.data() + toc, ranges.size() * storage::kTocEntrySize);
    for (int i = 0; i < 4; ++i) {
      image[storage::kTocCrcOffset + i] =
          static_cast<uint8_t>(toc_crc >> (8 * i));
    }
    storage::RepairHeaderCrc(image);
    ExpectSettles(spec, image);
  }
}

}  // namespace
}  // namespace pigeonring::api
