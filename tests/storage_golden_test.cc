// Golden-file tests for the persistent index format: a tiny committed
// index per domain under tests/data/ must (a) still open and answer
// queries identically to an index rebuilt from the same raw records, and
// (b) be byte-identical to what today's writer emits for those records.
// (b) is the load-bearing half: any accidental encoding change — field
// order, alignment, map iteration order — flips the diff and forces a
// deliberate kFormatVersion bump instead of a silently unreadable corpus.
//
// Regenerating after an *intentional* format change:
//   PIGEONRING_REGEN_GOLDEN=1 ./storage_golden_test
// rewrites the committed files in the source tree, then re-verifies.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/bitvector.h"
#include "graphed/graph.h"

#ifndef PIGEONRING_TEST_DATA_DIR
#error "build must define PIGEONRING_TEST_DATA_DIR (see tests/CMakeLists.txt)"
#endif

namespace pigeonring::api {
namespace {

namespace fs = std::filesystem;

std::string DataPath(const std::string& name) {
  return (fs::path(PIGEONRING_TEST_DATA_DIR) / name).string();
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// The golden datasets are spelled out literally — they must never drift,
// and at this size literals read better than generator configs.
std::vector<BitVector> GoldenVectors() {
  // 16-dimensional vectors, bit i of record r set iff patterns[r] has it.
  const std::vector<uint16_t> patterns = {
      0x0000, 0xFFFF, 0x00FF, 0xFF00, 0x0F0F, 0xF0F0,
      0x3333, 0xCCCC, 0x0001, 0x8000, 0x00FE, 0x7FFF,
  };
  std::vector<BitVector> vectors;
  for (uint16_t pattern : patterns) {
    BitVector v(16);
    for (int i = 0; i < 16; ++i) {
      if ((pattern >> i) & 1) v.Set(i, true);
    }
    vectors.push_back(std::move(v));
  }
  return vectors;
}

std::vector<std::vector<int>> GoldenSets() {
  return {
      {1, 2, 3, 4},  {1, 2, 3, 5},   {1, 2, 3, 4}, {7, 8, 9},
      {7, 8, 9, 10}, {2, 4, 6, 8},   {1, 3, 5, 7}, {11, 12},
      {11, 12, 13},  {1, 2, 3, 4, 5}, {6, 7, 8, 9}, {42},
  };
}

std::vector<std::string> GoldenStrings() {
  return {
      "pigeon",  "pigeons", "pigeonhole", "ring",  "rings", "wring",
      "holes",   "whole",   "pigeonring", "robin", "robins", "ping",
  };
}

std::vector<std::string> GoldenFixedStrings() {
  // One shared length (6) with substitution- and rotation-style
  // near-duplicates, so the fast-path index has non-trivial postings in
  // every indel case at tau = 2.
  return {
      "pigeon", "pigeop", "igeonp", "wrings", "wrings", "rrings",
      "holesz", "wholes", "robins", "robinz", "obinsr", "zzzzzz",
  };
}

std::vector<graphed::Graph> GoldenGraphs() {
  // Small labeled graphs: triangles, paths, and near-duplicates one edit
  // apart, so a tau=1 join has both matches and non-matches.
  auto triangle = [](int l0, int l1, int l2, int el) {
    graphed::Graph g;
    g.AddVertex(l0);
    g.AddVertex(l1);
    g.AddVertex(l2);
    g.AddEdge(0, 1, el);
    g.AddEdge(1, 2, el);
    g.AddEdge(0, 2, el);
    return g;
  };
  auto path3 = [](int l0, int l1, int l2, int el) {
    graphed::Graph g;
    g.AddVertex(l0);
    g.AddVertex(l1);
    g.AddVertex(l2);
    g.AddEdge(0, 1, el);
    g.AddEdge(1, 2, el);
    return g;
  };
  return {
      triangle(1, 1, 1, 0), triangle(1, 1, 2, 0), path3(1, 1, 1, 0),
      path3(1, 2, 1, 0),    triangle(3, 3, 3, 1), path3(3, 3, 3, 1),
      triangle(1, 1, 1, 1), path3(2, 2, 2, 0),
  };
}

struct GoldenCase {
  std::string file;
  IndexSpec spec;
  Dataset dataset;
};

std::vector<GoldenCase> GoldenCases() {
  std::vector<GoldenCase> cases;
  {
    IndexSpec spec;
    spec.domain = Domain::kHamming;
    spec.tau = 4;
    spec.chain_length = 2;
    spec.num_parts = 4;
    cases.push_back({"golden_hamming.pgri", spec, Dataset(GoldenVectors())});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kSet;
    spec.tau = 0.6;
    spec.chain_length = 2;
    spec.num_boxes = 3;
    cases.push_back({"golden_sets.pgri", spec, Dataset(GoldenSets())});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kEdit;
    spec.tau = 2;
    spec.chain_length = 2;
    spec.kappa = 2;
    cases.push_back({"golden_strings.pgri", spec, Dataset(GoldenStrings())});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kEdit;
    spec.tau = 2;
    spec.chain_length = 2;
    spec.edit_fast_path = EditFastPath::kOn;
    cases.push_back(
        {"golden_strings_fast.pgri", spec, Dataset(GoldenFixedStrings())});
  }
  {
    IndexSpec spec;
    spec.domain = Domain::kGraph;
    spec.tau = 1;
    spec.chain_length = 2;
    cases.push_back({"golden_graphs.pgri", spec, Dataset(GoldenGraphs())});
  }
  return cases;
}

bool RegenRequested() {
  const char* regen = std::getenv("PIGEONRING_REGEN_GOLDEN");
  return regen != nullptr && regen[0] != '\0' && std::string(regen) != "0";
}

TEST(StorageGoldenTest, CommittedIndexesMatchTodaysWriter) {
  for (GoldenCase& c : GoldenCases()) {
    SCOPED_TRACE(c.file);
    auto built = Db::Open(c.spec, std::move(c.dataset));
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    const std::string golden_path = DataPath(c.file);
    if (RegenRequested()) {
      ASSERT_TRUE(built->Save(golden_path).ok());
    }
    ASSERT_TRUE(fs::exists(golden_path))
        << golden_path
        << " missing — run with PIGEONRING_REGEN_GOLDEN=1 to create it";

    // (b) Byte-stability: today's writer reproduces the committed bytes.
    const std::string fresh_path =
        (fs::path(testing::TempDir()) / c.file).string();
    ASSERT_TRUE(built->Save(fresh_path).ok());
    EXPECT_EQ(ReadFile(fresh_path), ReadFile(golden_path))
        << c.file
        << " diverged from the current encoder. If the format change is "
           "intentional, bump storage::kFormatVersion and regenerate with "
           "PIGEONRING_REGEN_GOLDEN=1.";

    // (a) The committed file opens and answers like the built index.
    auto loaded = Db::OpenIndex(c.spec, golden_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->num_records(), built->num_records());

    Session built_session = built->NewSession();
    Session loaded_session = loaded->NewSession();
    for (int id = 0; id < built->num_records(); ++id) {
      auto query = built->RecordQuery(id);
      ASSERT_TRUE(query.ok()) << query.status().ToString();
      auto a = built_session.Search(*query);
      auto b = loaded_session.Search(*query);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(b->ids, a->ids) << "record " << id;
    }
    auto join_a = built_session.SelfJoin();
    auto join_b = loaded_session.SelfJoin();
    ASSERT_TRUE(join_a.ok() && join_b.ok());
    EXPECT_EQ(join_b->pairs, join_a->pairs);
    EXPECT_EQ(join_b->stats.candidates, join_a->stats.candidates);
  }
}

}  // namespace
}  // namespace pigeonring::api
