// Round-trip tests for the persistent index format: for every domain,
// build a Db from raw data, Save it, Open the saved index, and require
// the loaded snapshot to answer searches, batches, and self-joins with
// exactly the ids, pairs, and deterministic counters of the built one.
// Also pins the format's determinism guarantee (two Saves of one snapshot
// are byte-identical) and the degenerate collections (empty, one record).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "api/writer.h"
#include "api_test_util.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"

namespace pigeonring::api {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(testing::TempDir()) / name).string();
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

std::vector<BitVector> MakeVectors(int n, int dim, uint64_t seed) {
  datagen::BinaryVectorConfig config;
  config.dimensions = dim;
  config.num_objects = n;
  config.num_clusters = 10;
  config.cluster_fraction = 0.6;
  config.flip_rate = 0.05;
  config.seed = seed;
  return datagen::GenerateBinaryVectors(config);
}

std::vector<std::vector<int>> MakeSets(int n, uint64_t seed) {
  datagen::TokenSetConfig config;
  config.num_records = n;
  config.avg_tokens = 12;
  config.universe_size = 3 * n;
  config.duplicate_fraction = 0.4;
  config.seed = seed;
  return datagen::GenerateTokenSets(config);
}

std::vector<std::string> MakeStrings(int n, uint64_t seed) {
  datagen::StringConfig config;
  config.num_records = n;
  config.avg_length = 14;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.seed = seed;
  return datagen::GenerateStrings(config);
}

std::vector<std::string> MakeFixedStrings(int n, int length, uint64_t seed) {
  datagen::StringConfig config;
  config.num_records = n;
  config.fixed_length = length;
  config.duplicate_fraction = 0.4;
  config.max_perturb_edits = 2;
  config.seed = seed;
  return datagen::GenerateStrings(config);
}

std::vector<graphed::Graph> MakeGraphs(int n, uint64_t seed) {
  datagen::GraphConfig config;
  config.num_graphs = n;
  config.avg_vertices = 8;
  config.avg_edges = 9;
  config.vertex_labels = 8;
  config.duplicate_fraction = 0.4;
  config.max_perturb_ops = 2;
  config.seed = seed;
  return datagen::GenerateGraphs(config);
}

// Saves `built`, reopens the file under the same spec, and requires the
// loaded snapshot to reproduce the built one exactly on every query
// surface: per-record searches, a batch over `query_ids`, and the
// self-join.
void ExpectLoadedMatchesBuilt(Db built, const std::string& path,
                              const std::vector<int>& query_ids) {
  Status saved = built.Save(path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  auto reopened = Db::OpenIndex(built.spec(), path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Db loaded = std::move(reopened).value();
  EXPECT_EQ(loaded.num_records(), built.num_records());
  EXPECT_EQ(loaded.domain(), built.domain());

  Session built_session = built.NewSession();
  Session loaded_session = loaded.NewSession();

  std::vector<Query> queries;
  for (int id : query_ids) {
    auto built_query = built.RecordQuery(id);
    auto loaded_query = loaded.RecordQuery(id);
    ASSERT_TRUE(built_query.ok()) << built_query.status().ToString();
    ASSERT_TRUE(loaded_query.ok()) << loaded_query.status().ToString();

    auto built_one = built_session.Search(*built_query);
    auto loaded_one = loaded_session.Search(*loaded_query);
    EXPECT_TRUE(built_one.ok()) << built_one.status().ToString();
    EXPECT_TRUE(loaded_one.ok()) << loaded_one.status().ToString();
    if (built_one.ok() && loaded_one.ok()) {
      EXPECT_EQ(loaded_one->ids, built_one->ids) << "query id " << id;
      ExpectSameCounters(loaded_one->stats, built_one->stats);
    }
    queries.push_back(std::move(built_query).value());
  }

  if (!queries.empty()) {
    auto built_batch = built_session.SearchBatch(queries);
    auto loaded_batch = loaded_session.SearchBatch(queries);
    EXPECT_TRUE(built_batch.ok()) << built_batch.status().ToString();
    EXPECT_TRUE(loaded_batch.ok()) << loaded_batch.status().ToString();
    if (built_batch.ok() && loaded_batch.ok()) {
      EXPECT_EQ(loaded_batch->ids, built_batch->ids);
      ExpectSameCounters(loaded_batch->stats, built_batch->stats);
    }
  }

  auto built_join = built_session.SelfJoin();
  auto loaded_join = loaded_session.SelfJoin();
  EXPECT_TRUE(built_join.ok()) << built_join.status().ToString();
  EXPECT_TRUE(loaded_join.ok()) << loaded_join.status().ToString();
  if (built_join.ok() && loaded_join.ok()) {
    EXPECT_EQ(loaded_join->pairs, built_join->pairs);
    EXPECT_EQ(loaded_join->stats.pairs, built_join->stats.pairs);
    EXPECT_EQ(loaded_join->stats.candidates, built_join->stats.candidates);
  }
}

std::vector<int> SampleIds(int n) {
  std::vector<int> ids;
  for (int id = 0; id < n; id += 7) ids.push_back(id);
  return ids;
}

TEST(StorageRoundtripTest, Hamming) {
  IndexSpec spec;
  spec.domain = Domain::kHamming;
  spec.tau = 8;
  spec.chain_length = 3;
  spec.num_parts = 8;
  auto built = Db::Open(spec, Dataset(MakeVectors(200, 64, 71)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ExpectLoadedMatchesBuilt(*std::move(built), TempPath("rt_hamming.pgri"),
                           SampleIds(200));
}

TEST(StorageRoundtripTest, Set) {
  IndexSpec spec;
  spec.domain = Domain::kSet;
  spec.tau = 0.7;
  spec.chain_length = 2;
  spec.measure = setsim::SetMeasure::kJaccard;
  spec.num_boxes = 5;
  auto built = Db::Open(spec, Dataset(MakeSets(150, 72)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ExpectLoadedMatchesBuilt(*std::move(built), TempPath("rt_set.pgri"),
                           SampleIds(150));
}

TEST(StorageRoundtripTest, SetOverlap) {
  IndexSpec spec;
  spec.domain = Domain::kSet;
  spec.tau = 4;
  spec.chain_length = 2;
  spec.measure = setsim::SetMeasure::kOverlap;
  spec.num_boxes = 4;
  auto built = Db::Open(spec, Dataset(MakeSets(120, 73)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ExpectLoadedMatchesBuilt(*std::move(built), TempPath("rt_set_overlap.pgri"),
                           SampleIds(120));
}

TEST(StorageRoundtripTest, Edit) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.chain_length = 2;
  spec.kappa = 2;
  auto built = Db::Open(spec, Dataset(MakeStrings(150, 74)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ExpectLoadedMatchesBuilt(*std::move(built), TempPath("rt_edit.pgri"),
                           SampleIds(150));
}

TEST(StorageRoundtripTest, EditFastPath) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 3;
  spec.chain_length = 2;
  spec.kappa = 2;
  spec.edit_fast_path = EditFastPath::kOn;
  auto built = Db::Open(spec, Dataset(MakeFixedStrings(150, 12, 84)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->spec().edit_fast_path, EditFastPath::kOn);
  ExpectLoadedMatchesBuilt(*std::move(built), TempPath("rt_editfast.pgri"),
                           SampleIds(150));
}

// edit_fast_path is resolved at open time and persisted: a kAuto reopen
// adopts the file's flag, while a contradicting explicit mode is a typed
// FailedPrecondition (the index simply does not contain the sections the
// other mode would need).
TEST(StorageRoundtripTest, EditFastPathFlagResolutionOnOpenIndex) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.chain_length = 2;
  spec.kappa = 2;
  const auto data = MakeFixedStrings(120, 10, 85);
  auto built = Db::Open(spec, Dataset(data));  // kAuto, eligible -> kOn
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->spec().edit_fast_path, EditFastPath::kOn);
  const std::string path = TempPath("rt_editfast_flag.pgri");
  ASSERT_TRUE(built->Save(path).ok());

  IndexSpec as_auto = spec;
  auto adopted = Db::OpenIndex(as_auto, path);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted->spec().edit_fast_path, EditFastPath::kOn);

  IndexSpec as_on = spec;
  as_on.edit_fast_path = EditFastPath::kOn;
  EXPECT_TRUE(Db::OpenIndex(as_on, path).ok());

  IndexSpec as_off = spec;
  as_off.edit_fast_path = EditFastPath::kOff;
  auto mismatched = Db::OpenIndex(as_off, path);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);

  // The reverse contradiction: a pivotal-built file opened with kOn.
  IndexSpec off_build = spec;
  off_build.edit_fast_path = EditFastPath::kOff;
  auto pivotal_built = Db::Open(off_build, Dataset(data));
  ASSERT_TRUE(pivotal_built.ok()) << pivotal_built.status().ToString();
  const std::string pivotal_path = TempPath("rt_editoff_flag.pgri");
  ASSERT_TRUE(pivotal_built->Save(pivotal_path).ok());
  auto on_over_off = Db::OpenIndex(as_on, pivotal_path);
  ASSERT_FALSE(on_over_off.ok());
  EXPECT_EQ(on_over_off.status().code(), StatusCode::kFailedPrecondition);
  // And the kAuto reopen adopts kOff.
  auto adopted_off = Db::OpenIndex(as_auto, pivotal_path);
  ASSERT_TRUE(adopted_off.ok()) << adopted_off.status().ToString();
  EXPECT_EQ(adopted_off->spec().edit_fast_path, EditFastPath::kOff);
}

TEST(StorageRoundtripTest, EditFastSaveIsDeterministic) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.chain_length = 2;
  spec.edit_fast_path = EditFastPath::kOn;
  auto built = Db::Open(spec, Dataset(MakeFixedStrings(100, 9, 86)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string first = TempPath("det_fast_a.pgri");
  const std::string second = TempPath("det_fast_b.pgri");
  const std::string resaved = TempPath("det_fast_c.pgri");
  ASSERT_TRUE(built->Save(first).ok());
  ASSERT_TRUE(built->Save(second).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(second));
  auto loaded = Db::OpenIndex(spec, first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->Save(resaved).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(resaved));
}

TEST(StorageRoundtripTest, EditFastEmptyAndSingleRecord) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.edit_fast_path = EditFastPath::kOn;

  auto empty = Db::Open(spec, Dataset(std::vector<std::string>{}));
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  const std::string empty_path = TempPath("rt_editfast_empty.pgri");
  ASSERT_TRUE(empty->Save(empty_path).ok());
  auto empty_loaded = Db::OpenIndex(spec, empty_path);
  ASSERT_TRUE(empty_loaded.ok()) << empty_loaded.status().ToString();
  EXPECT_EQ(empty_loaded->num_records(), 0);
  Session empty_session = empty_loaded->NewSession();
  auto empty_join = empty_session.SelfJoin();
  ASSERT_TRUE(empty_join.ok());
  EXPECT_TRUE(empty_join->pairs.empty());

  auto single =
      Db::Open(spec, Dataset(std::vector<std::string>{"pigeonhole"}));
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  const std::string single_path = TempPath("rt_editfast_single.pgri");
  ASSERT_TRUE(single->Save(single_path).ok());
  auto single_loaded = Db::OpenIndex(spec, single_path);
  ASSERT_TRUE(single_loaded.ok()) << single_loaded.status().ToString();
  EXPECT_EQ(single_loaded->num_records(), 1);
  auto query = single_loaded->RecordQuery(0);
  ASSERT_TRUE(query.ok());
  Session single_session = single_loaded->NewSession();
  auto hit = single_session.Search(*query);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  EXPECT_EQ(hit->ids, std::vector<int>{0});
}

TEST(StorageRoundtripTest, Graph) {
  IndexSpec spec;
  spec.domain = Domain::kGraph;
  spec.tau = 2;
  spec.chain_length = 2;
  auto built = Db::Open(spec, Dataset(MakeGraphs(60, 75)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ExpectLoadedMatchesBuilt(*std::move(built), TempPath("rt_graph.pgri"),
                           SampleIds(60));
}

// A raw query (not a RecordQuery) must hit the loaded index identically —
// covers the query-conversion path (e.g. the set domain's raw-token ->
// frequency-rank mapping runs through the deserialized dictionary).
TEST(StorageRoundtripTest, RawQueriesThroughLoadedIndex) {
  IndexSpec spec;
  spec.domain = Domain::kSet;
  spec.tau = 0.6;
  spec.chain_length = 2;
  const auto sets = MakeSets(150, 76);
  auto built = Db::Open(spec, Dataset(sets));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path = TempPath("rt_set_raw.pgri");
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = Db::OpenIndex(spec, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Session built_session = built->NewSession();
  Session loaded_session = loaded->NewSession();
  for (int id = 0; id < 150; id += 11) {
    Query raw = SetQuery{sets[id], /*ranked=*/false};
    auto a = built_session.Search(raw);
    auto b = loaded_session.Search(raw);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(b->ids, a->ids);
    ExpectSameCounters(b->stats, a->stats);
  }
}

// Db::Open(spec, path) routes index files to the loader by magic sniff —
// the same file opens identically via the generic and the explicit entry.
TEST(StorageRoundtripTest, OpenSniffsIndexFiles) {
  IndexSpec spec;
  spec.domain = Domain::kHamming;
  spec.tau = 6;
  spec.chain_length = 2;
  spec.num_parts = 8;
  auto built = Db::Open(spec, Dataset(MakeVectors(120, 64, 77)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path = TempPath("rt_sniff.pgri");
  ASSERT_TRUE(built->Save(path).ok());

  auto via_open = Db::Open(spec, path);
  ASSERT_TRUE(via_open.ok()) << via_open.status().ToString();
  Session a = via_open->NewSession();
  Session b = built->NewSession();
  auto join_a = a.SelfJoin();
  auto join_b = b.SelfJoin();
  ASSERT_TRUE(join_a.ok() && join_b.ok());
  EXPECT_EQ(join_a->pairs, join_b->pairs);
}

// Two Saves of the same snapshot — and a Save of the loaded snapshot —
// produce byte-identical files: the format has no nondeterministic bytes
// (map iteration order, timestamps, uninitialized padding).
TEST(StorageRoundtripTest, SaveIsDeterministic) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 2;
  spec.chain_length = 2;
  spec.kappa = 2;
  auto built = Db::Open(spec, Dataset(MakeStrings(120, 78)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string first = TempPath("det_a.pgri");
  const std::string second = TempPath("det_b.pgri");
  const std::string resaved = TempPath("det_c.pgri");
  ASSERT_TRUE(built->Save(first).ok());
  ASSERT_TRUE(built->Save(second).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(second));

  auto loaded = Db::OpenIndex(spec, first);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->Save(resaved).ok());
  EXPECT_EQ(ReadFile(first), ReadFile(resaved));
}

// Degenerate collections: empty and single-record datasets must survive
// the full save/load cycle in every domain.
TEST(StorageRoundtripTest, EmptyCollections) {
  struct Case {
    const char* name;
    IndexSpec spec;
    Dataset dataset;
  };
  IndexSpec hamming;
  hamming.domain = Domain::kHamming;
  hamming.tau = 4;
  IndexSpec sets;
  sets.domain = Domain::kSet;
  sets.tau = 0.7;
  IndexSpec edit;
  edit.domain = Domain::kEdit;
  edit.tau = 1;
  IndexSpec graph;
  graph.domain = Domain::kGraph;
  graph.tau = 1;
  std::vector<Case> cases;
  cases.push_back({"hamming", hamming, Dataset(std::vector<BitVector>{})});
  cases.push_back({"sets", sets, Dataset(std::vector<std::vector<int>>{})});
  cases.push_back({"edit", edit, Dataset(std::vector<std::string>{})});
  cases.push_back({"graph", graph, Dataset(std::vector<graphed::Graph>{})});

  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    auto built = Db::Open(c.spec, std::move(c.dataset));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const std::string path = TempPath(std::string("empty_") + c.name + ".pgri");
    ASSERT_TRUE(built->Save(path).ok());
    auto loaded = Db::OpenIndex(c.spec, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_records(), 0);
    Session session = loaded->NewSession();
    auto join = session.SelfJoin();
    ASSERT_TRUE(join.ok()) << join.status().ToString();
    EXPECT_TRUE(join->pairs.empty());
  }
}

// A zero-record index is not a dead end: Save it, OpenIndex it, grow it
// through a Writer, and the re-saved file must be byte-identical to a
// cold build over the inserted records — in every domain.
TEST(StorageRoundtripTest, ZeroRecordStatesGrowThroughWriters) {
  struct Case {
    const char* name;
    IndexSpec spec;
    Dataset empty;
    Dataset records;
  };
  IndexSpec hamming;
  hamming.domain = Domain::kHamming;
  hamming.tau = 4;
  IndexSpec sets;
  sets.domain = Domain::kSet;
  sets.tau = 0.7;
  IndexSpec edit;
  edit.domain = Domain::kEdit;
  edit.tau = 1;
  IndexSpec graph;
  graph.domain = Domain::kGraph;
  graph.tau = 1;
  std::vector<Case> cases;
  cases.push_back({"hamming", hamming, Dataset(std::vector<BitVector>{}),
                   Dataset(MakeVectors(3, 64, 87))});
  cases.push_back({"sets", sets, Dataset(std::vector<std::vector<int>>{}),
                   Dataset(std::vector<std::vector<int>>{
                       {1, 2, 3}, {2, 3, 4}, {9, 11}})});
  cases.push_back({"edit", edit, Dataset(std::vector<std::string>{}),
                   Dataset(std::vector<std::string>{"alpha", "beta", "gap"})});
  cases.push_back({"graph", graph, Dataset(std::vector<graphed::Graph>{}),
                   Dataset(MakeGraphs(3, 88))});

  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    auto built = Db::Open(c.spec, std::move(c.empty));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const std::string empty_path =
        TempPath(std::string("grow_empty_") + c.name + ".pgri");
    ASSERT_TRUE(built->Save(empty_path).ok());

    auto loaded = Db::OpenIndex(c.spec, empty_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->num_records(), 0);
    auto writer = loaded->NewWriter();
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    const int n = std::visit(
        [](const auto& records) { return static_cast<int>(records.size()); },
        c.records);
    for (int i = 0; i < n; ++i) {
      auto query = std::visit(
          [&](const auto& records) -> Query {
            using T = std::decay_t<decltype(records[i])>;
            if constexpr (std::is_same_v<T, std::vector<int>>) {
              return SetQuery{records[i], /*ranked=*/false};
            } else {
              return records[i];
            }
          },
          c.records);
      auto id = writer->Insert(query);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      EXPECT_EQ(*id, i);
    }
    const std::string grown_path =
        TempPath(std::string("grow_full_") + c.name + ".pgri");
    ASSERT_TRUE(loaded->Save(grown_path).ok());

    // Reference: the same records built cold. Note the grown index's
    // resolved spec (e.g. the edit fast-path flag, fixed at empty-open
    // time) must agree with what a cold open over the records resolves —
    // otherwise the byte comparison itself would flag the divergence.
    auto cold = Db::Open(c.spec, std::move(c.records));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    const std::string cold_path =
        TempPath(std::string("grow_cold_") + c.name + ".pgri");
    ASSERT_TRUE(cold->Save(cold_path).ok());
    EXPECT_EQ(ReadFile(grown_path), ReadFile(cold_path));

    auto reopened = Db::OpenIndex(c.spec, grown_path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->num_records(), n);
  }
}

// An empty edit index persists the fast-path flag it resolved at open
// time: kAuto resolves to the permissive pivotal path (so the database
// can grow strings of any length), the file records that choice, and a
// kOn reopen over it is the usual typed contradiction. An explicit
// kOn-on-empty save keeps the fixed-length contract across the reload.
TEST(StorageRoundtripTest, EmptyEditIndexPersistsItsResolvedFastPath) {
  IndexSpec spec;
  spec.domain = Domain::kEdit;
  spec.tau = 1;

  auto built = Db::Open(spec, Dataset(std::vector<std::string>{}));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_EQ(built->spec().edit_fast_path, EditFastPath::kOff);
  const std::string path = TempPath("rt_empty_edit_auto.pgri");
  ASSERT_TRUE(built->Save(path).ok());

  auto adopted = Db::OpenIndex(spec, path);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted->spec().edit_fast_path, EditFastPath::kOff);
  // The loaded empty database accepts variable-length strings.
  auto writer = adopted->NewWriter();
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer->Insert(Query(std::string("ab"))).ok());
  ASSERT_TRUE(
      writer->Insert(Query(std::string("a much longer string"))).ok());
  ASSERT_TRUE(writer->Compact().ok());

  IndexSpec as_on = spec;
  as_on.edit_fast_path = EditFastPath::kOn;
  auto mismatched = Db::OpenIndex(as_on, path);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);

  // Explicit kOn over an empty dataset keeps the fixed-length contract
  // through save/load: the first insert into the reload fixes the length.
  auto on_built = Db::Open(as_on, Dataset(std::vector<std::string>{}));
  ASSERT_TRUE(on_built.ok()) << on_built.status().ToString();
  const std::string on_path = TempPath("rt_empty_edit_on.pgri");
  ASSERT_TRUE(on_built->Save(on_path).ok());
  auto on_loaded = Db::OpenIndex(spec, on_path);  // kAuto adopts kOn
  ASSERT_TRUE(on_loaded.ok()) << on_loaded.status().ToString();
  EXPECT_EQ(on_loaded->spec().edit_fast_path, EditFastPath::kOn);
  auto on_writer = on_loaded->NewWriter();
  ASSERT_TRUE(on_writer.ok()) << on_writer.status().ToString();
  ASSERT_TRUE(on_writer->Insert(Query(std::string("tenletters"))).ok());
  auto mixed = on_writer->Insert(Query(std::string("four")));
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
}

TEST(StorageRoundtripTest, SingleRecordCollections) {
  struct Case {
    const char* name;
    IndexSpec spec;
    Dataset dataset;
  };
  IndexSpec hamming;
  hamming.domain = Domain::kHamming;
  hamming.tau = 4;
  IndexSpec sets;
  sets.domain = Domain::kSet;
  sets.tau = 0.7;
  IndexSpec edit;
  edit.domain = Domain::kEdit;
  edit.tau = 1;
  IndexSpec graph;
  graph.domain = Domain::kGraph;
  graph.tau = 1;
  std::vector<Case> cases;
  cases.push_back(
      {"hamming", hamming, Dataset(MakeVectors(1, 64, 79))});
  cases.push_back(
      {"sets", sets, Dataset(std::vector<std::vector<int>>{{3, 1, 4, 5}})});
  cases.push_back(
      {"edit", edit, Dataset(std::vector<std::string>{"pigeonhole"})});
  cases.push_back({"graph", graph, Dataset(MakeGraphs(1, 80))});

  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    auto built = Db::Open(c.spec, std::move(c.dataset));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const std::string path =
        TempPath(std::string("single_") + c.name + ".pgri");
    ASSERT_TRUE(built->Save(path).ok());
    auto loaded = Db::OpenIndex(c.spec, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_records(), 1);

    Session built_session = built->NewSession();
    Session loaded_session = loaded->NewSession();
    auto query = loaded->RecordQuery(0);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto a = built_session.Search(*query);
    auto b = loaded_session.Search(*query);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(b->ids, a->ids);
    // The record always matches itself at any non-negative threshold.
    EXPECT_EQ(b->ids, std::vector<int>{0});
  }
}

// Loaded snapshots honor query-time overrides that differ from the build
// configuration: the fingerprint covers build-relevant fields only.
TEST(StorageRoundtripTest, QueryTimeKnobsMayDiffer) {
  IndexSpec build_spec;
  build_spec.domain = Domain::kHamming;
  build_spec.tau = 8;
  build_spec.chain_length = 3;
  build_spec.num_parts = 8;
  build_spec.num_threads = 1;
  auto built = Db::Open(build_spec, Dataset(MakeVectors(200, 64, 81)));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path = TempPath("rt_knobs.pgri");
  ASSERT_TRUE(built->Save(path).ok());

  IndexSpec serve_spec = build_spec;
  serve_spec.chain_length = 2;   // different chain
  serve_spec.num_threads = 2;    // different threading
  serve_spec.chunk = 4;
  auto loaded = Db::OpenIndex(serve_spec, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Reference: the same serving spec built from raw data.
  auto reference = Db::Open(serve_spec, Dataset(MakeVectors(200, 64, 81)));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  Session a = loaded->NewSession();
  Session b = reference->NewSession();
  auto join_a = a.SelfJoin();
  auto join_b = b.SelfJoin();
  ASSERT_TRUE(join_a.ok() && join_b.ok());
  EXPECT_EQ(join_a->pairs, join_b->pairs);
  EXPECT_EQ(join_a->stats.candidates, join_b->stats.candidates);
}

}  // namespace
}  // namespace pigeonring::api
