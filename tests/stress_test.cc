// Adversarial edge cases across the search modules: degenerate collections
// (all-identical objects, single-bucket indexes, empty datasets) must stay
// correct and terminate promptly.

#include <gtest/gtest.h>

#include "common/random.h"
#include "editdist/pivotal.h"
#include "graphed/pars.h"
#include "hamming/search.h"
#include "setsim/pkwise.h"

namespace pigeonring {
namespace {

TEST(StressTest, HammingAllIdenticalObjects) {
  // Every object hashes into the same bucket in every part.
  std::vector<BitVector> objects(500, BitVector::FromString(
                                          "1010101010101010101010101010101"
                                          "010101010101010101010101010101"
                                          "01"));
  hamming::HammingSearcher searcher(objects, 4);
  for (int l : {1, 2, 4}) {
    const auto results = searcher.Search(objects[0], 3, l);
    EXPECT_EQ(results.size(), objects.size());
  }
  // A far-away query finds nothing.
  BitVector far(objects[0].dimensions());
  for (int i = 0; i < far.dimensions(); ++i) far.Set(i, !objects[0].Get(i));
  EXPECT_TRUE(searcher.Search(far, 3, 2).empty());
}

TEST(StressTest, HammingEmptyCollection) {
  hamming::HammingSearcher searcher(std::vector<BitVector>{}, 1);
  EXPECT_EQ(searcher.num_objects(), 0);
}

TEST(StressTest, SetsAllIdentical) {
  std::vector<std::vector<int>> raw(300, std::vector<int>{1, 2, 3, 4, 5});
  setsim::SetCollection collection(raw);
  setsim::PkwiseSearcher searcher(&collection, 0.9, 5);
  const auto results = searcher.Search(collection.record(0), 2);
  EXPECT_EQ(results.size(), raw.size());
}

TEST(StressTest, SetsSingletonUniverse) {
  // One token shared by everything: frequency order is degenerate.
  std::vector<std::vector<int>> raw(100, std::vector<int>{7});
  setsim::SetCollection collection(raw);
  setsim::PkwiseSearcher searcher(&collection, 1.0, 5);
  EXPECT_EQ(searcher.Search(collection.record(0), 2).size(), raw.size());
}

TEST(StressTest, StringsAllIdentical) {
  const std::vector<std::string> data(400, "aaaaaaaaaaaaaaaa");
  editdist::EditDistanceSearcher searcher(&data, 2, 2);
  for (auto filter : {editdist::EditFilter::kPivotal,
                      editdist::EditFilter::kRing}) {
    EXPECT_EQ(searcher.Search(data[0], filter, 3).size(), data.size());
  }
  EXPECT_TRUE(searcher.Search("zzzzzzzzzzzzzzzz",
                              editdist::EditFilter::kRing, 3)
                  .empty());
}

TEST(StressTest, StringsSingleRepeatedGram) {
  // Every gram of every string is identical ("aa"): one enormous inverted
  // list, heavy tie extension in the prefix.
  std::vector<std::string> data;
  Rng rng(91);
  for (int i = 0; i < 200; ++i) {
    data.push_back(std::string(10 + rng.NextBounded(6), 'a'));
  }
  const int tau = 2;
  editdist::EditDistanceSearcher searcher(&data, tau, 2);
  for (int probe : {0, 50, 199}) {
    EXPECT_EQ(searcher.Search(data[probe], editdist::EditFilter::kRing, 3),
              editdist::BruteForceEditSearch(data, data[probe], tau));
  }
}

TEST(StressTest, GraphsAllIdentical) {
  graphed::Graph g({1, 2, 3, 4});
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 3, 0);
  const std::vector<graphed::Graph> data(150, g);
  graphed::GraphSearcher searcher(&data, 2);
  for (auto filter :
       {graphed::GraphFilter::kPars, graphed::GraphFilter::kRing}) {
    EXPECT_EQ(searcher.Search(data[0], filter, 2).size(), data.size());
  }
}

TEST(StressTest, GraphsSingleVertexAndEmptyQueries) {
  std::vector<graphed::Graph> data;
  data.emplace_back(std::vector<int>{5});
  data.emplace_back(std::vector<int>{5, 5});
  graphed::Graph q(std::vector<int>{5});
  graphed::GraphSearcher searcher(&data, 1);
  const auto results = searcher.Search(q, graphed::GraphFilter::kRing, 1);
  EXPECT_EQ(results, (std::vector<int>{0, 1}));  // one insertion away
}

TEST(StressTest, RepeatedSearchesReuseScratchCorrectly) {
  // Epoch-stamped scratch must not leak state between queries.
  Rng rng(93);
  std::vector<BitVector> objects;
  for (int i = 0; i < 300; ++i) {
    BitVector v(64);
    for (int j = 0; j < 64; ++j) v.Set(j, rng.NextBernoulli(0.5));
    objects.push_back(std::move(v));
  }
  hamming::HammingSearcher searcher(objects, 4);
  for (int round = 0; round < 50; ++round) {
    const int id = static_cast<int>(rng.NextBounded(objects.size()));
    const int tau = 4 + static_cast<int>(rng.NextBounded(16));
    const int l = 1 + static_cast<int>(rng.NextBounded(4));
    EXPECT_EQ(searcher.Search(objects[id], tau, l),
              hamming::BruteForceSearch(objects, objects[id], tau));
  }
}

}  // namespace
}  // namespace pigeonring
