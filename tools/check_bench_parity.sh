#!/usr/bin/env sh
# Fails if any bench JSON dump carries a failed self-check.
#
# The bench binaries verify their own results (fast path vs pivotal
# parity, loaded-vs-built joins, facade-vs-templated ids, the churn
# panel's quiesce_matches_rebuild) and write the verdicts into the JSON
# they emit — by design the verdict is written
# even when the binary then exits nonzero, so a stale or inspected
# artifact still tells the truth. This script is the CI-side net: it
# scans every given file (or bench_*.json in the current directory) for
# a self-check field that is false and exits 1 listing the offenders.
# `oversubscribed` is informational (threads > cores), not a self-check,
# and is ignored.
#
# Engine-scaling dumps additionally have a *presence* requirement: the
# net panel's `net_matches_inprocess` and the shard panel's
# `shard_matches_unsharded` verdicts must exist. A refactor that
# silently drops a panel would otherwise pass the false-scan (nothing
# false in a field that is not there) while its identity check quietly
# stops running.
#
# Usage: check_bench_parity.sh [file.json ...]

set -u

files="$*"
if [ -z "$files" ]; then
  files=$(ls bench_*.json 2>/dev/null)
fi
if [ -z "$files" ]; then
  echo "check_bench_parity: no bench JSON files found" >&2
  exit 1
fi

status=0
for f in $files; do
  if [ ! -r "$f" ]; then
    echo "check_bench_parity: cannot read $f" >&2
    status=1
    continue
  fi
  bad=$(grep -oE '"(parity|[a-z_]*self_check[a-z_]*|[a-z_]*matches[a-z_]*|[a-z_]*identical[a-z_]*)": *false' "$f")
  if [ -n "$bad" ]; then
    echo "check_bench_parity: $f reports a failed self-check:" >&2
    echo "$bad" | sed 's/^/  /' >&2
    status=1
    continue
  fi
  case "$f" in
    *engine_scaling*)
      if ! grep -q '"net_matches_inprocess":' "$f"; then
        echo "check_bench_parity: $f is missing the net panel verdict (net_matches_inprocess)" >&2
        status=1
        continue
      fi
      if ! grep -q '"shard_matches_unsharded":' "$f"; then
        echo "check_bench_parity: $f is missing the shard panel verdict (shard_matches_unsharded)" >&2
        status=1
        continue
      fi
      ;;
  esac
  echo "check_bench_parity: $f ok"
done
exit $status
