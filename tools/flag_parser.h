// Shared command-line plumbing for the pigeonring tools (pigeonring_cli,
// pigeonring_loadgen): a minimal strict --key value flag parser plus the
// Unwrap/Check helpers that map library Status errors onto the documented
// exit codes.
//
// Exit-code contract (shared by every tool that includes this header):
//   0  success
//   1  the library reported a typed Status error
//   2  usage error (unknown/misplaced flag, malformed numeric value,
//      missing required flag)
//
// This is tool code: helpers print to stderr and call std::exit directly,
// which is exactly what library code must never do — keep this header out
// of src/.

#ifndef PIGEONRING_TOOLS_FLAG_PARSER_H_
#define PIGEONRING_TOOLS_FLAG_PARSER_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/status.h"

namespace pigeonring::tools {

/// Minimal --key value flag parser, strict about its vocabulary: flags
/// outside `allowed` are rejected up front (exit 2), so a typo'd or
/// misplaced flag never silently no-ops.
class Flags {
 public:
  Flags(int argc, char** argv, int first, std::set<std::string> allowed)
      : allowed_(std::move(allowed)) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        std::fprintf(stderr, "bad flag syntax near '%s'\n", argv[i]);
        std::exit(2);
      }
      key = key.substr(2);
      if (allowed_.find(key) == allowed_.end()) {
        std::string known;
        for (const std::string& k : allowed_) {
          known += (known.empty() ? "--" : ", --") + k;
        }
        std::fprintf(stderr, "unknown flag --%s (allowed here: %s)\n",
                     key.c_str(), known.c_str());
        std::exit(2);
      }
      values_[key] = argv[++i];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long long GetInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : ParseInt(key, it->second);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : ParseDouble(key, it->second);
  }
  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }
  double RequireDouble(const std::string& key) const {
    return ParseDouble(key, Require(key));
  }
  long long RequireInt(const std::string& key) const {
    return ParseInt(key, Require(key));
  }

 private:
  // Numeric values parse strictly (the whole token, no atof-style silent
  // zero for garbage): a typo'd value is a usage error, not a tau of 0.
  static long long ParseInt(const std::string& key,
                            const std::string& value) {
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "--%s expects an integer, got '%s'\n",
                   key.c_str(), value.c_str());
      std::exit(2);
    }
    return parsed;
  }
  static double ParseDouble(const std::string& key,
                            const std::string& value) {
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "--%s expects a number, got '%s'\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    }
    return parsed;
  }

  std::set<std::string> allowed_;
  std::map<std::string, std::string> values_;
};

/// Unwraps a StatusOr or maps its typed error to exit code 1.
template <typename T>
T Unwrap(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

/// Exits 1 with the typed error if `status` is not OK.
inline void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace pigeonring::tools

#endif  // PIGEONRING_TOOLS_FLAG_PARSER_H_
