// pigeonring_cli — generate datasets, build persistent indexes, run
// thresholded similarity searches, and run self-joins from the command
// line.
//
// Usage:
//   pigeonring_cli gen    <vectors|sets|strings|graphs> --out FILE
//       [--n N] [--seed S] [--dim D] [--bias B] [--avg A] [--fixed L]
//   pigeonring_cli build  <hamming|sets|strings|graphs> --data FILE
//       --out INDEX --tau T [--measure jaccard|overlap] [--kappa K]
//       [--fast-path auto|on|off] [--shards S]
//   pigeonring_cli search <hamming|sets|strings|graphs>
//       (--data FILE | --index INDEX)
//       --tau T [--chain L] [--queries N] [--measure jaccard|overlap]
//       [--kappa K] [--fast-path auto|on|off] [--alloc uniform|costmodel]
//       [--threads N] [--clients N] [--shards S] [--stats kv]
//   pigeonring_cli join <hamming|sets|strings|graphs>
//       (--data FILE | --index INDEX)
//       --tau T [--chain L] [--measure jaccard|overlap] [--kappa K]
//       [--fast-path auto|on|off] [--alloc uniform|costmodel] [--threads N]
//       [--clients N] [--shards S] [--stats kv] [--print N]
//   pigeonring_cli insert <hamming|sets|strings|graphs> --index INDEX
//       --data FILE --tau T [--out INDEX2]
//       [--measure jaccard|overlap] [--kappa K] [--fast-path auto|on|off]
//   pigeonring_cli remove <hamming|sets|strings|graphs> --index INDEX
//       --ids 3,17,42 --tau T [--out INDEX2]
//       [--measure jaccard|overlap] [--kappa K] [--fast-path auto|on|off]
//   pigeonring_cli compact <hamming|sets|strings|graphs> --index INDEX
//       --tau T [--out INDEX2]
//       [--measure jaccard|overlap] [--kappa K] [--fast-path auto|on|off]
//   pigeonring_cli serve  <hamming|sets|strings|graphs>
//       (--data FILE | --index INDEX) --tau T [--chain L] [--port P]
//       [--host H] [--max-inflight N] [--measure jaccard|overlap]
//       [--kappa K] [--fast-path auto|on|off] [--alloc uniform|costmodel]
//       [--threads N] [--shards S]
//
// --shards S (build/search/join/serve) partitions the collection into S
// round-robin shards executed scatter-gather (src/shard/): results stay
// byte-identical to --shards 1 at any S. `build --shards` persists the
// placement in the index file; opening such an index re-adopts it unless
// an explicit --shards overrides. S is a serving-time knob, not part of
// the index fingerprint, so it never conflicts like --tau does.
//
// `serve` opens the database like search/join and exposes it over TCP via
// the net/ subsystem's length-prefixed binary protocol (net/protocol.h).
// --port 0 (the default) binds an ephemeral port; the chosen port is
// announced on stdout as `serving <kind> on <host>:<port> (...)` — a
// stable, parseable line. --max-inflight caps concurrently executing
// search/join/mutation ops; excess requests are shed with typed
// ResourceExhausted error frames rather than queued. SIGINT/SIGTERM stop
// the server gracefully: in-flight ops drain and deliver their replies
// before the process exits and prints its admission counters.
// pigeonring_loadgen (tools/pigeonring_loadgen.cc) is the matching
// load-generating client.
//
// `build` indexes a raw dataset once and persists the built state in the
// storage layer's container format (storage/index_file.h); `search` /
// `join` with --index serve from such a file without re-deriving anything
// — the spec flags must repeat the build-relevant values (--tau, and
// --measure / --kappa where they apply), or the library rejects the open
// with a typed kFailedPrecondition. Query-time flags (--chain, --alloc,
// --threads, --clients) are free to differ from build time. Results are
// byte-identical between --data and --index serving.
//
// --fast-path (strings only) selects the fixed-length case-decomposition
// index: `on` demands a fixed-length dataset (a mixed-length dataset under
// `on` is a usage error, exit 2), `off` forces the pivotal q-gram path,
// and `auto` (default) lets the library's advisor decide; the resolved
// choice is reported as stat.fast_path under --stats kv. Result ids and
// pairs are byte-identical across all three modes — only the candidate
// counters and timings move.
//
// `insert` / `remove` / `compact` mutate a persisted index through the
// library's api::Writer surface. `insert` appends every record of a raw
// dataset file; `remove` drops the given record ids (comma-separated; a
// nonexistent id is the library's typed kNotFound, exit 1); both write the
// compacted merged state back to --index (or --out, leaving the input
// untouched). `compact` rewrites the index in its canonical compacted form
// — a cheap open/verify/rewrite cycle, since a persisted index never
// carries pending mutations. Like search/join with --index, the spec flags
// must repeat the build-relevant values.
//
// `search` samples N query objects from the dataset (the paper's protocol)
// and prints per-query averages; `join` reports all result pairs. With
// --chain 1 every command runs the pigeonhole baseline; larger values
// enable the pigeonring filter. Both commands build an api::IndexSpec from
// the flags and run through api::Db + api::Session — the same facade
// library users get: --threads N shards each call over N threads,
// --clients N runs the workload from N concurrent client threads (one
// Session each) over one shared Db and verifies their results are
// byte-identical (exit 1 otherwise) — results never depend on either
// flag. --stats kv replaces the human-readable summary with
// machine-readable key=value lines; stat.millis sums per-query times,
// stat.wall_millis is true wall clock over ALL clients' requests (for
// search, stat.served_queries / stat.wall_millis is the throughput —
// with N clients the wall covers N executions of the batch).
//
// Exit codes: 0 on success; 1 when the library reports a typed Status
// error (invalid spec, unreadable dataset, corrupt or mismatched index
// file) or concurrent clients diverge; 2 for usage errors (unknown
// command, unknown or misplaced flags, malformed numeric values).

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/db.h"
#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "editdist/casedec.h"
#include "io/dataset_io.h"
#include "kernels/kernels.h"
#include "net/server.h"
#include "storage/index_file.h"

#include "flag_parser.h"

namespace {

using namespace pigeonring;
using tools::Check;
using tools::Flags;
using tools::Unwrap;

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pigeonring_cli gen    <vectors|sets|strings|graphs> --out FILE\n"
      "                        [--n N] [--seed S] [--dim D] [--bias B]\n"
      "                        [--avg A] [--fixed L]\n"
      "  pigeonring_cli build  <hamming|sets|strings|graphs> --data FILE\n"
      "                        --out INDEX --tau T\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off] [--shards S]\n"
      "  pigeonring_cli search <hamming|sets|strings|graphs>\n"
      "                        (--data FILE | --index INDEX)\n"
      "                        --tau T [--chain L] [--queries N] [--seed S]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off]\n"
      "                        [--alloc uniform|costmodel]\n"
      "                        [--threads N] [--clients N] [--shards S]\n"
      "                        [--stats kv]\n"
      "  pigeonring_cli join   <hamming|sets|strings|graphs>\n"
      "                        (--data FILE | --index INDEX)\n"
      "                        --tau T [--chain L]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off]\n"
      "                        [--alloc uniform|costmodel]\n"
      "                        [--threads N] [--clients N] [--shards S]\n"
      "                        [--stats kv] [--print N]\n"
      "  pigeonring_cli insert <hamming|sets|strings|graphs> --index INDEX\n"
      "                        --data FILE --tau T [--out INDEX2]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off]\n"
      "  pigeonring_cli remove <hamming|sets|strings|graphs> --index INDEX\n"
      "                        --ids 3,17,42 --tau T [--out INDEX2]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off]\n"
      "  pigeonring_cli compact <hamming|sets|strings|graphs> --index "
      "INDEX\n"
      "                        --tau T [--out INDEX2]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off]\n"
      "  pigeonring_cli serve  <hamming|sets|strings|graphs>\n"
      "                        (--data FILE | --index INDEX)\n"
      "                        --tau T [--chain L] [--port P] [--host H]\n"
      "                        [--max-inflight N]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--fast-path auto|on|off]\n"
      "                        [--alloc uniform|costmodel] [--threads N]\n"
      "                        [--shards S]\n");
  std::exit(2);
}

/// The flag vocabulary of one command/domain combination.
std::set<std::string> AllowedFlags(const std::string& command,
                                   const std::string& kind) {
  if (command == "gen") {
    std::set<std::string> allowed = {"out", "n", "seed"};
    if (kind == "vectors") {
      allowed.insert("dim");
      allowed.insert("bias");
    } else {
      allowed.insert("avg");
    }
    if (kind == "strings") allowed.insert("fixed");
    return allowed;
  }
  if (command == "build") {
    std::set<std::string> allowed = {"data", "out", "tau", "shards"};
    if (kind == "sets") allowed.insert("measure");
    if (kind == "strings") {
      allowed.insert("kappa");
      allowed.insert("fast-path");
    }
    return allowed;
  }
  if (command == "insert" || command == "remove" || command == "compact") {
    std::set<std::string> allowed = {"index", "tau", "out"};
    if (command == "insert") allowed.insert("data");
    if (command == "remove") allowed.insert("ids");
    if (kind == "sets") allowed.insert("measure");
    if (kind == "strings") {
      allowed.insert("kappa");
      allowed.insert("fast-path");
    }
    return allowed;
  }
  if (command == "serve") {
    std::set<std::string> allowed = {"data",   "index",        "tau",
                                     "chain",  "threads",      "port",
                                     "host",   "max-inflight", "shards"};
    if (kind == "hamming") allowed.insert("alloc");
    if (kind == "sets") allowed.insert("measure");
    if (kind == "strings") {
      allowed.insert("kappa");
      allowed.insert("fast-path");
    }
    return allowed;
  }
  std::set<std::string> allowed = {"data",    "index",   "tau",     "chain",
                                   "seed",    "threads", "clients", "stats",
                                   "shards"};
  if (command == "search") allowed.insert("queries");
  if (command == "join") allowed.insert("print");
  if (kind == "hamming") allowed.insert("alloc");
  if (kind == "sets") allowed.insert("measure");
  if (kind == "strings") {
    allowed.insert("kappa");
    allowed.insert("fast-path");
  }
  return allowed;
}

/// Resolves the (--data FILE | --index INDEX) alternative of search/join
/// into an opened Db: --data builds from raw, --index bulk-loads a
/// persisted index (strictly — a non-index file under --index is an
/// error, not a fallback to the dataset loaders).
api::Db OpenFromFlags(const api::IndexSpec& spec, const Flags& flags) {
  const std::string data = flags.Get("data", "");
  const std::string index = flags.Get("index", "");
  if (data.empty() == index.empty()) {
    std::fprintf(stderr, "exactly one of --data or --index is required\n");
    std::exit(2);
  }
  if (!index.empty()) return Unwrap(api::Db::OpenIndex(spec, index));
  return Unwrap(api::Db::Open(spec, data));
}

/// Parses --fast-path (default auto); an unknown value is a usage error.
api::EditFastPath FastPathFromFlags(const Flags& flags) {
  const std::string value = flags.Get("fast-path", "auto");
  auto mode = api::ParseEditFastPath(value);
  if (!mode.ok()) {
    std::fprintf(stderr, "unknown --fast-path mode '%s' (allowed: auto, on, "
                         "off)\n",
                 value.c_str());
    std::exit(2);
  }
  return mode.value();
}

/// --fast-path on is part of the flag contract, not a property the user
/// discovers after a full index build: when the dataset is raw (--data) and
/// readable, a mixed-length collection under `on` is rejected up front as
/// a usage error (exit 2), like any other invalid flag/data combination.
/// Unreadable files and --index serving fall through — the library's typed
/// errors (exit 1) cover those.
void CheckFastPathUsable(const api::IndexSpec& spec, const Flags& flags) {
  if (spec.domain != api::Domain::kEdit ||
      spec.edit_fast_path != api::EditFastPath::kOn) {
    return;
  }
  const std::string data = flags.Get("data", "");
  if (data.empty() || storage::LooksLikeIndexFile(data)) return;
  auto strings = io::LoadStrings(data);
  if (!strings.ok()) return;
  if (!editdist::CaseDecSearcher::Eligible(*strings)) {
    std::fprintf(stderr,
                 "--fast-path on requires a fixed-length dataset: every "
                 "string in %s must share one length in [1, %d]\n",
                 data.c_str(), editdist::CaseDecSearcher::kMaxLength);
    std::exit(2);
  }
}

/// True iff --stats kv was requested; any other --stats value exits 2.
bool StatsKv(const Flags& flags) {
  const std::string stats = flags.Get("stats", "");
  if (stats.empty()) return false;
  if (stats == "kv") return true;
  std::fprintf(stderr, "unknown --stats mode '%s' (supported: kv)\n",
               stats.c_str());
  std::exit(2);
}

int RunGen(const std::string& kind, const Flags& flags) {
  const std::string out = flags.Require("out");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int n = static_cast<int>(flags.GetInt("n", 10000));
  if (kind == "vectors") {
    datagen::BinaryVectorConfig config;
    config.num_objects = n;
    config.dimensions = static_cast<int>(flags.GetInt("dim", 256));
    config.num_clusters = std::max(1, n / 50);
    config.bit_bias = flags.GetDouble("bias", 0.0);
    config.seed = seed;
    Check(io::SaveBitVectors(out, datagen::GenerateBinaryVectors(config)));
  } else if (kind == "sets") {
    datagen::TokenSetConfig config;
    config.num_records = n;
    config.avg_tokens = static_cast<int>(flags.GetInt("avg", 14));
    config.universe_size = std::max(100, n);
    config.seed = seed;
    Check(io::SaveTokenSets(out, datagen::GenerateTokenSets(config)));
  } else if (kind == "strings") {
    datagen::StringConfig config;
    config.num_records = n;
    config.avg_length = static_cast<int>(flags.GetInt("avg", 16));
    config.fixed_length = static_cast<int>(flags.GetInt("fixed", 0));
    config.seed = seed;
    Check(io::SaveStrings(out, datagen::GenerateStrings(config)));
  } else if (kind == "graphs") {
    datagen::GraphConfig config;
    config.num_graphs = n;
    config.avg_vertices = static_cast<int>(flags.GetInt("avg", 12));
    config.avg_edges = config.avg_vertices + 1;
    config.seed = seed;
    Check(io::SaveGraphs(out, datagen::GenerateGraphs(config)));
  } else {
    Usage();
  }
  std::printf("wrote %d objects to %s\n", n, out.c_str());
  return 0;
}

int RunBuild(const std::string& kind, const Flags& flags) {
  api::IndexSpec spec;
  auto domain = api::ParseDomain(kind);
  if (!domain.ok()) Usage();
  spec.domain = domain.value();
  spec.tau = flags.RequireDouble("tau");
  spec.kappa = static_cast<int>(flags.GetInt("kappa", 2));
  spec.shards = static_cast<int>(flags.GetInt("shards", 1));
  if (spec.domain == api::Domain::kEdit) {
    spec.edit_fast_path = FastPathFromFlags(flags);
  }
  const std::string measure = flags.Get("measure", "jaccard");
  if (measure == "jaccard") {
    spec.measure = setsim::SetMeasure::kJaccard;
  } else if (measure == "overlap") {
    spec.measure = setsim::SetMeasure::kOverlap;
  } else {
    std::fprintf(stderr, "unknown --measure '%s'\n", measure.c_str());
    std::exit(2);
  }
  CheckFastPathUsable(spec, flags);
  const api::Db db = Unwrap(api::Db::Open(spec, flags.Require("data")));
  const std::string out = flags.Require("out");
  Check(db.Save(out));
  std::printf("indexed %d objects into %s\n", db.num_records(), out.c_str());
  return 0;
}

/// The spec an insert/remove/compact invocation opens its index under:
/// the build-relevant flags (--tau, --measure, --kappa, --fast-path) must
/// repeat the build's values, exactly like search/join with --index.
api::IndexSpec MutationSpecFromFlags(const std::string& kind,
                                     const Flags& flags) {
  api::IndexSpec spec;
  auto domain = api::ParseDomain(kind);
  if (!domain.ok()) Usage();
  spec.domain = domain.value();
  spec.tau = flags.RequireDouble("tau");
  spec.kappa = static_cast<int>(flags.GetInt("kappa", 2));
  if (spec.domain == api::Domain::kEdit) {
    spec.edit_fast_path = FastPathFromFlags(flags);
  }
  const std::string measure = flags.Get("measure", "jaccard");
  if (measure == "jaccard") {
    spec.measure = setsim::SetMeasure::kJaccard;
  } else if (measure == "overlap") {
    spec.measure = setsim::SetMeasure::kOverlap;
  } else {
    std::fprintf(stderr, "unknown --measure '%s'\n", measure.c_str());
    std::exit(2);
  }
  return spec;
}

/// Loads the raw dataset `path` in `kind`'s format as a list of
/// insertable records. Set records stay raw token ids — Writer::Insert
/// maps them through the index's dictionary like any other raw SetQuery.
std::vector<api::Query> LoadInsertRecords(const std::string& kind,
                                          const std::string& path) {
  std::vector<api::Query> records;
  if (kind == "hamming") {
    for (auto& vector : Unwrap(io::LoadBitVectors(path))) {
      records.emplace_back(std::move(vector));
    }
  } else if (kind == "sets") {
    for (auto& tokens : Unwrap(io::LoadTokenSets(path))) {
      records.emplace_back(api::SetQuery{std::move(tokens), false});
    }
  } else if (kind == "strings") {
    for (auto& text : Unwrap(io::LoadStrings(path))) {
      records.emplace_back(std::move(text));
    }
  } else {
    for (auto& graph : Unwrap(io::LoadGraphs(path))) {
      records.emplace_back(std::move(graph));
    }
  }
  return records;
}

/// Parses the --ids comma list strictly: every token must be a whole
/// integer, and an empty list is a usage error.
std::vector<int> ParseIdList(const std::string& value) {
  std::vector<int> ids;
  size_t pos = 0;
  while (pos <= value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string token =
        value.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(token.c_str(), &end, 10);
    if (token.empty() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "--ids expects comma-separated integers, got '%s'\n",
                   value.c_str());
      std::exit(2);
    }
    ids.push_back(static_cast<int>(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ids;
}

int RunInsert(const std::string& kind, const Flags& flags) {
  const api::IndexSpec spec = MutationSpecFromFlags(kind, flags);
  const std::string index = flags.Require("index");
  const api::Db db = Unwrap(api::Db::OpenIndex(spec, index));
  const std::vector<api::Query> records =
      LoadInsertRecords(kind, flags.Require("data"));
  api::Writer writer = Unwrap(db.NewWriter());
  for (size_t i = 0; i < records.size(); ++i) {
    auto id = writer.Insert(records[i]);
    if (!id.ok()) {
      std::fprintf(stderr, "error: record %zu: %s\n", i,
                   id.status().ToString().c_str());
      std::exit(1);
    }
  }
  // Save serializes the compacted merged state even while the delta is
  // pending, so no explicit Compact() is needed before persisting.
  const std::string out = flags.Get("out", index);
  Check(db.Save(out));
  std::printf("inserted %zu records into %s (%d records total)\n",
              records.size(), out.c_str(), db.num_records());
  return 0;
}

int RunRemove(const std::string& kind, const Flags& flags) {
  const api::IndexSpec spec = MutationSpecFromFlags(kind, flags);
  const std::string index = flags.Require("index");
  const api::Db db = Unwrap(api::Db::OpenIndex(spec, index));
  const std::vector<int> ids = ParseIdList(flags.Require("ids"));
  api::Writer writer = Unwrap(db.NewWriter());
  for (int id : ids) Check(writer.Remove(id));
  // Removals do not shrink the id space until compaction packs the
  // survivors; compact before reporting so the count matches the file.
  Check(writer.Compact());
  const std::string out = flags.Get("out", index);
  Check(db.Save(out));
  std::printf("removed %zu records from %s (%d records remain)\n", ids.size(),
              out.c_str(), db.num_records());
  return 0;
}

int RunCompact(const std::string& kind, const Flags& flags) {
  const api::IndexSpec spec = MutationSpecFromFlags(kind, flags);
  const std::string index = flags.Require("index");
  const api::Db db = Unwrap(api::Db::OpenIndex(spec, index));
  api::Writer writer = Unwrap(db.NewWriter());
  Check(writer.Compact());
  const std::string out = flags.Get("out", index);
  Check(db.Save(out));
  std::printf("compacted %s (%d records)\n", out.c_str(), db.num_records());
  return 0;
}

std::vector<int> SampleQueryIds(int count, int population, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(static_cast<int>(rng.NextBounded(population)));
  }
  return ids;
}

/// Builds the declarative spec every search/join flag maps into; the Db
/// layer owns all further validation.
api::IndexSpec SpecFromFlags(const std::string& kind, const Flags& flags,
                             int default_chain) {
  api::IndexSpec spec;
  auto domain = api::ParseDomain(kind);
  if (!domain.ok()) Usage();
  spec.domain = domain.value();
  spec.tau = flags.RequireDouble("tau");
  spec.chain_length =
      static_cast<int>(flags.GetInt("chain", default_chain));
  spec.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  spec.kappa = static_cast<int>(flags.GetInt("kappa", 2));
  spec.shards = static_cast<int>(flags.GetInt("shards", 1));
  if (spec.domain == api::Domain::kEdit) {
    spec.edit_fast_path = FastPathFromFlags(flags);
  }
  const std::string measure = flags.Get("measure", "jaccard");
  if (measure == "jaccard") {
    spec.measure = setsim::SetMeasure::kJaccard;
  } else if (measure == "overlap") {
    spec.measure = setsim::SetMeasure::kOverlap;
  } else {
    std::fprintf(stderr, "unknown --measure '%s'\n", measure.c_str());
    std::exit(2);
  }
  const std::string alloc = flags.Get("alloc", "costmodel");
  if (alloc == "uniform") {
    spec.allocation = hamming::AllocationMode::kUniform;
  } else if (alloc == "costmodel") {
    spec.allocation = hamming::AllocationMode::kCostModel;
  } else {
    std::fprintf(stderr, "unknown --alloc '%s'\n", alloc.c_str());
    std::exit(2);
  }
  return spec;
}

/// Runs `work` (one client's whole workload, through its own Session) from
/// `clients` concurrent threads over the shared `db`. Every client must
/// succeed and `same` must hold between client 0's result and every
/// other's — concurrent sessions are contractually byte-identical, so a
/// divergence is a library bug and exits 1. Returns client 0's result and
/// stores the wall-clock time of the whole fan-out in `wall_millis`.
template <typename Result>
Result RunClients(const api::Db& db, int clients,
                  const std::function<StatusOr<Result>(api::Session&)>& work,
                  const std::function<bool(const Result&, const Result&)>& same,
                  double* wall_millis) {
  StopWatch watch;
  std::vector<std::optional<StatusOr<Result>>> outs(clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&db, &work, &outs, c] {
        api::Session session = db.NewSession();
        outs[c].emplace(work(session));
      });
    }
    for (std::thread& t : threads) t.join();
  }
  *wall_millis = watch.ElapsedMillis();
  Result first = Unwrap(std::move(*outs[0]));
  for (int c = 1; c < clients; ++c) {
    const Result other = Unwrap(std::move(*outs[c]));
    if (!same(first, other)) {
      std::fprintf(stderr, "error: client %d diverged from client 0\n", c);
      std::exit(1);
    }
  }
  return first;
}

/// Parses --clients (>= 1; anything else is a usage error).
int ClientCount(const Flags& flags) {
  const int clients = static_cast<int>(flags.GetInt("clients", 1));
  if (clients < 1) {
    std::fprintf(stderr, "--clients expects a count >= 1, got %d\n", clients);
    std::exit(2);
  }
  return clients;
}

int RunSearch(const std::string& kind, const Flags& flags) {
  const int num_queries = static_cast<int>(flags.GetInt("queries", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const bool stats_kv = StatsKv(flags);
  const int clients = ClientCount(flags);
  const api::IndexSpec spec = SpecFromFlags(kind, flags, 1);
  CheckFastPathUsable(spec, flags);

  const api::Db db = OpenFromFlags(spec, flags);
  if (db.num_records() == 0) {
    std::fprintf(stderr, "empty dataset\n");
    return 1;
  }
  std::vector<api::Query> queries;
  for (int id : SampleQueryIds(num_queries, db.num_records(), seed)) {
    queries.push_back(Unwrap(db.RecordQuery(id)));
  }
  double wall_millis = 0;
  const api::BatchResult batch = RunClients<api::BatchResult>(
      db, clients,
      [&queries](api::Session& session) {
        return session.SearchBatch(queries);
      },
      [](const api::BatchResult& a, const api::BatchResult& b) {
        return a.ids == b.ids;
      },
      &wall_millis);
  const engine::QueryStats& totals = batch.stats;
  const int executed = static_cast<int>(queries.size());

  if (stats_kv) {
    std::printf("stat.command=search\n");
    std::printf("stat.kind=%s\n", kind.c_str());
    std::printf("stat.threads=%d\n", spec.num_threads);
    std::printf("stat.clients=%d\n", clients);
    std::printf("stat.kernel_isa=%s\n",
                kernels::IsaName(kernels::ActiveIsa()));
    std::printf("stat.queries=%d\n", executed);
    // Every client runs the whole batch, so the wall clock below covers
    // served_queries = clients * queries — the matching numerator for
    // throughput math.
    std::printf("stat.served_queries=%d\n", executed * clients);
    std::printf("stat.candidates=%lld\n",
                static_cast<long long>(totals.candidates));
    std::printf("stat.results=%lld\n",
                static_cast<long long>(totals.results));
    if (spec.domain == api::Domain::kEdit) {
      // The resolved choice (never "auto" here: Open pins it down).
      std::printf("stat.fast_path=%s\n",
                  api::EditFastPathName(db.spec().edit_fast_path));
      std::printf("stat.fast_path_candidates=%lld\n",
                  static_cast<long long>(totals.fast_path_candidates));
      std::printf("stat.fast_path_hits=%lld\n",
                  static_cast<long long>(totals.fast_path_hits));
    }
    std::printf("stat.millis=%.4f\n", totals.total_millis);
    std::printf("stat.wall_millis=%.4f\n", wall_millis);
  } else {
    Table table("search " + kind + " tau=" + flags.Require("tau") +
                    " chain=" + Table::Int(spec.chain_length) +
                    " threads=" + Table::Int(spec.num_threads) +
                    " clients=" + Table::Int(clients),
                {"queries", "avg candidates", "avg results", "avg time (ms)",
                 "wall (ms)"});
    table.AddRow(
        {Table::Int(executed),
         Table::Num(static_cast<double>(totals.candidates) / executed, 1),
         Table::Num(static_cast<double>(totals.results) / executed, 1),
         Table::Num(totals.total_millis / executed, 4),
         Table::Num(wall_millis, 1)});
    table.Print();
  }
  return 0;
}

int RunJoin(const std::string& kind, const Flags& flags) {
  const bool stats_kv = StatsKv(flags);
  const int clients = ClientCount(flags);
  const api::IndexSpec spec = SpecFromFlags(kind, flags, 2);
  CheckFastPathUsable(spec, flags);

  const api::Db db = OpenFromFlags(spec, flags);
  double wall_millis = 0;
  const api::JoinResult join = RunClients<api::JoinResult>(
      db, clients,
      [](api::Session& session) { return session.SelfJoin(); },
      [](const api::JoinResult& a, const api::JoinResult& b) {
        return a.pairs == b.pairs &&
               a.stats.candidates == b.stats.candidates;
      },
      &wall_millis);
  const engine::JoinStats& stats = join.stats;
  const std::vector<api::IdPair>& pairs = join.pairs;

  if (stats_kv) {
    std::printf("stat.command=join\n");
    std::printf("stat.kind=%s\n", kind.c_str());
    std::printf("stat.threads=%d\n", spec.num_threads);
    std::printf("stat.clients=%d\n", clients);
    std::printf("stat.kernel_isa=%s\n",
                kernels::IsaName(kernels::ActiveIsa()));
    std::printf("stat.pairs=%lld\n", static_cast<long long>(stats.pairs));
    std::printf("stat.candidates=%lld\n",
                static_cast<long long>(stats.candidates));
    if (spec.domain == api::Domain::kEdit) {
      std::printf("stat.fast_path=%s\n",
                  api::EditFastPathName(db.spec().edit_fast_path));
    }
    std::printf("stat.millis=%.4f\n", stats.total_millis);
    std::printf("stat.wall_millis=%.4f\n", wall_millis);
  } else {
    std::printf(
        "pairs: %lld (candidates: %lld, threads: %d, clients: %d, %.1f ms)\n",
        static_cast<long long>(stats.pairs),
        static_cast<long long>(stats.candidates), spec.num_threads, clients,
        wall_millis);
  }
  const int limit = static_cast<int>(flags.GetInt("print", 20));
  for (int i = 0; i < std::min<int>(limit, pairs.size()); ++i) {
    std::printf("%d %d\n", pairs[i].first, pairs[i].second);
  }
  if (static_cast<int>(pairs.size()) > limit) {
    std::printf("... (%zu total, raise --print to see more)\n", pairs.size());
  }
  return 0;
}

// Signal-driven shutdown for `serve`: the handlers only set a flag (the
// async-signal-safe minimum); the main thread polls it and drives the
// graceful Server::Stop() drain.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int RunServe(const std::string& kind, const Flags& flags) {
  const api::IndexSpec spec = SpecFromFlags(kind, flags, 2);
  CheckFastPathUsable(spec, flags);
  const api::Db db = OpenFromFlags(spec, flags);

  net::ServerOptions options;
  options.host = flags.Get("host", "127.0.0.1");
  const long long port = flags.GetInt("port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port expects a port in [0, 65535], got %lld\n",
                 port);
    std::exit(2);
  }
  options.port = static_cast<int>(port);
  const long long max_inflight = flags.GetInt("max-inflight", 64);
  if (max_inflight < 0) {
    std::fprintf(stderr, "--max-inflight expects a count >= 0, got %lld\n",
                 max_inflight);
    std::exit(2);
  }
  options.max_inflight = static_cast<int>(max_inflight);

  net::Server server = Unwrap(net::Server::Start(db, options));
  // Scripts (and the smoke tests) parse this line to learn the ephemeral
  // port — keep its shape stable.
  std::printf("serving %s on %s:%d (%d records)\n", kind.c_str(),
              options.host.c_str(), server.port(), db.num_records());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  const net::ServerStats stats = server.Snapshot();
  std::printf("shutdown: accepted=%lld shed=%lld protocol_errors=%lld\n",
              static_cast<long long>(stats.accepted),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.protocol_errors));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) Usage();
  const std::string command = argv[1];
  const std::string kind = argv[2];
  if (command != "gen" && command != "build" && command != "search" &&
      command != "join" && command != "insert" && command != "remove" &&
      command != "compact" && command != "serve") {
    Usage();
  }
  const Flags flags(argc, argv, 3, AllowedFlags(command, kind));
  if (command == "gen") return RunGen(kind, flags);
  if (command == "build") return RunBuild(kind, flags);
  if (command == "search") return RunSearch(kind, flags);
  if (command == "insert") return RunInsert(kind, flags);
  if (command == "remove") return RunRemove(kind, flags);
  if (command == "compact") return RunCompact(kind, flags);
  if (command == "serve") return RunServe(kind, flags);
  return RunJoin(kind, flags);
}
