// pigeonring_cli — generate datasets, run thresholded similarity searches,
// and run self-joins from the command line.
//
// Usage:
//   pigeonring_cli gen <vectors|sets|strings|graphs> --out FILE
//       [--n N] [--seed S] [--dim D] [--avg A]
//   pigeonring_cli search <hamming|sets|strings|graphs> --data FILE
//       --tau T [--chain L] [--queries N] [--measure jaccard|overlap]
//       [--threads N] [--stats kv]
//   pigeonring_cli join <hamming|sets|strings|graphs> --data FILE
//       --tau T [--chain L] [--measure jaccard|overlap]
//       [--threads N] [--stats kv]
//
// `search` samples N query objects from the dataset (the paper's protocol)
// and prints per-query averages; `join` reports all result pairs. With
// --chain 1 every command runs the pigeonhole baseline; larger values
// enable the pigeonring filter. Both commands run through the unified
// query engine: --threads N shards the batch over N threads (results are
// identical to --threads 1), and --stats kv replaces the human-readable
// summary with machine-readable key=value lines.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "datagen/binary_vectors.h"
#include "datagen/graphs.h"
#include "datagen/strings.h"
#include "datagen/token_sets.h"
#include "engine/engine.h"
#include "io/dataset_io.h"
#include "join/self_join.h"
#include "kernels/kernels.h"

namespace {

using namespace pigeonring;

/// Minimal --key value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        std::fprintf(stderr, "bad flag syntax near '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  long long GetInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pigeonring_cli gen    <vectors|sets|strings|graphs> --out FILE\n"
      "                        [--n N] [--seed S] [--dim D] [--avg A]\n"
      "  pigeonring_cli search <hamming|sets|strings|graphs> --data FILE\n"
      "                        --tau T [--chain L] [--queries N]\n"
      "                        [--measure jaccard|overlap] [--kappa K]\n"
      "                        [--threads N] [--stats kv]\n"
      "  pigeonring_cli join   <hamming|sets|strings|graphs> --data FILE\n"
      "                        --tau T [--chain L] [--measure ...]\n"
      "                        [--threads N] [--stats kv]\n");
  std::exit(2);
}

template <typename T>
T Unwrap(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

int RunGen(const std::string& kind, const Flags& flags) {
  const std::string out = flags.Require("out");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int n = static_cast<int>(flags.GetInt("n", 10000));
  if (kind == "vectors") {
    datagen::BinaryVectorConfig config;
    config.num_objects = n;
    config.dimensions = static_cast<int>(flags.GetInt("dim", 256));
    config.num_clusters = std::max(1, n / 50);
    config.bit_bias = flags.GetDouble("bias", 0.0);
    config.seed = seed;
    Check(io::SaveBitVectors(out, datagen::GenerateBinaryVectors(config)));
  } else if (kind == "sets") {
    datagen::TokenSetConfig config;
    config.num_records = n;
    config.avg_tokens = static_cast<int>(flags.GetInt("avg", 14));
    config.universe_size = std::max(100, n);
    config.seed = seed;
    Check(io::SaveTokenSets(out, datagen::GenerateTokenSets(config)));
  } else if (kind == "strings") {
    datagen::StringConfig config;
    config.num_records = n;
    config.avg_length = static_cast<int>(flags.GetInt("avg", 16));
    config.seed = seed;
    Check(io::SaveStrings(out, datagen::GenerateStrings(config)));
  } else if (kind == "graphs") {
    datagen::GraphConfig config;
    config.num_graphs = n;
    config.avg_vertices = static_cast<int>(flags.GetInt("avg", 12));
    config.avg_edges = config.avg_vertices + 1;
    config.seed = seed;
    Check(io::SaveGraphs(out, datagen::GenerateGraphs(config)));
  } else {
    Usage();
  }
  std::printf("wrote %d objects to %s\n", n, out.c_str());
  return 0;
}

std::vector<int> SampleQueryIds(int count, int population, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> ids;
  for (int i = 0; i < count; ++i) {
    ids.push_back(static_cast<int>(rng.NextBounded(population)));
  }
  return ids;
}

setsim::SetMeasure ParseMeasure(const Flags& flags) {
  const std::string measure = flags.Get("measure", "jaccard");
  if (measure == "jaccard") return setsim::SetMeasure::kJaccard;
  if (measure == "overlap") return setsim::SetMeasure::kOverlap;
  std::fprintf(stderr, "unknown --measure '%s'\n", measure.c_str());
  std::exit(2);
}

int RunSearch(const std::string& kind, const Flags& flags) {
  const std::string data_path = flags.Require("data");
  const double tau = std::atof(flags.Require("tau").c_str());
  const int chain = static_cast<int>(flags.GetInt("chain", 1));
  const int num_queries = static_cast<int>(flags.GetInt("queries", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const bool stats_kv = flags.Get("stats", "") == "kv";

  engine::ExecutionOptions options;
  options.num_threads = threads;
  engine::QueryStats totals;
  int executed = 0;

  if (kind == "hamming") {
    auto objects = Unwrap(io::LoadBitVectors(data_path));
    if (objects.empty()) {
      std::fprintf(stderr, "empty dataset\n");
      return 1;
    }
    std::vector<BitVector> queries;
    for (int id : SampleQueryIds(num_queries, objects.size(), seed)) {
      queries.push_back(objects[id]);
    }
    engine::HammingAdapter adapter(
        hamming::HammingSearcher(std::move(objects)), static_cast<int>(tau),
        chain);
    engine::SearchBatch(adapter, queries, options, &totals);
    executed = static_cast<int>(queries.size());
  } else if (kind == "sets") {
    setsim::SetCollection collection(Unwrap(io::LoadTokenSets(data_path)));
    if (collection.num_records() == 0) {
      std::fprintf(stderr, "empty dataset\n");
      return 1;
    }
    std::vector<setsim::RankedSet> queries;
    for (int id :
         SampleQueryIds(num_queries, collection.num_records(), seed)) {
      queries.push_back(collection.record(id));
    }
    engine::SetAdapter adapter(
        setsim::PkwiseSearcher(&collection, tau, 5, ParseMeasure(flags)),
        &collection, chain);
    engine::SearchBatch(adapter, queries, options, &totals);
    executed = static_cast<int>(queries.size());
  } else if (kind == "strings") {
    const auto data = Unwrap(io::LoadStrings(data_path));
    if (data.empty()) {
      std::fprintf(stderr, "empty dataset\n");
      return 1;
    }
    std::vector<std::string> queries;
    for (int id : SampleQueryIds(num_queries, data.size(), seed)) {
      queries.push_back(data[id]);
    }
    engine::EditAdapter adapter(
        editdist::EditDistanceSearcher(
            &data, static_cast<int>(tau),
            static_cast<int>(flags.GetInt("kappa", 2))),
        &data,
        chain > 1 ? editdist::EditFilter::kRing
                  : editdist::EditFilter::kPivotal,
        chain);
    engine::SearchBatch(adapter, queries, options, &totals);
    executed = static_cast<int>(queries.size());
  } else if (kind == "graphs") {
    const auto data = Unwrap(io::LoadGraphs(data_path));
    if (data.empty()) {
      std::fprintf(stderr, "empty dataset\n");
      return 1;
    }
    std::vector<graphed::Graph> queries;
    for (int id : SampleQueryIds(num_queries, data.size(), seed)) {
      queries.push_back(data[id]);
    }
    engine::GraphAdapter adapter(
        graphed::GraphSearcher(&data, static_cast<int>(tau)), &data,
        chain > 1 ? graphed::GraphFilter::kRing : graphed::GraphFilter::kPars,
        chain);
    engine::SearchBatch(adapter, queries, options, &totals);
    executed = static_cast<int>(queries.size());
  } else {
    Usage();
  }

  if (stats_kv) {
    std::printf("stat.command=search\n");
    std::printf("stat.kind=%s\n", kind.c_str());
    std::printf("stat.threads=%d\n", threads);
    std::printf("stat.kernel_isa=%s\n",
                kernels::IsaName(kernels::ActiveIsa()));
    std::printf("stat.queries=%d\n", executed);
    std::printf("stat.candidates=%lld\n",
                static_cast<long long>(totals.candidates));
    std::printf("stat.results=%lld\n",
                static_cast<long long>(totals.results));
    std::printf("stat.millis=%.4f\n", totals.total_millis);
  } else {
    Table table("search " + kind + " tau=" + flags.Require("tau") +
                    " chain=" + Table::Int(chain) +
                    " threads=" + Table::Int(threads),
                {"queries", "avg candidates", "avg results", "avg time (ms)"});
    table.AddRow(
        {Table::Int(executed),
         Table::Num(static_cast<double>(totals.candidates) / executed, 1),
         Table::Num(static_cast<double>(totals.results) / executed, 1),
         Table::Num(totals.total_millis / executed, 4)});
    table.Print();
  }
  return 0;
}

int RunJoin(const std::string& kind, const Flags& flags) {
  const std::string data_path = flags.Require("data");
  const double tau = std::atof(flags.Require("tau").c_str());
  const int chain = static_cast<int>(flags.GetInt("chain", 2));
  const int threads = static_cast<int>(flags.GetInt("threads", 1));
  const bool stats_kv = flags.Get("stats", "") == "kv";
  join::JoinStats stats;
  std::vector<join::IdPair> pairs;

  if (kind == "hamming") {
    auto objects = Unwrap(io::LoadBitVectors(data_path));
    hamming::HammingSearcher searcher(objects);
    pairs = join::HammingSelfJoin(searcher, static_cast<int>(tau), chain,
                                  &stats, threads);
  } else if (kind == "sets") {
    setsim::SetCollection collection(Unwrap(io::LoadTokenSets(data_path)));
    setsim::PkwiseSearcher searcher(&collection, tau, 5, ParseMeasure(flags));
    pairs = join::SetSelfJoin(searcher, collection, chain, &stats, threads);
  } else if (kind == "strings") {
    const auto data = Unwrap(io::LoadStrings(data_path));
    editdist::EditDistanceSearcher searcher(
        &data, static_cast<int>(tau),
        static_cast<int>(flags.GetInt("kappa", 2)));
    pairs = join::EditSelfJoin(searcher, data, editdist::EditFilter::kRing,
                               chain, &stats, threads);
  } else if (kind == "graphs") {
    const auto data = Unwrap(io::LoadGraphs(data_path));
    graphed::GraphSearcher searcher(&data, static_cast<int>(tau));
    pairs = join::GraphSelfJoin(searcher, data, graphed::GraphFilter::kRing,
                                chain, &stats, threads);
  } else {
    Usage();
  }
  if (stats_kv) {
    std::printf("stat.command=join\n");
    std::printf("stat.kind=%s\n", kind.c_str());
    std::printf("stat.threads=%d\n", threads);
    std::printf("stat.kernel_isa=%s\n",
                kernels::IsaName(kernels::ActiveIsa()));
    std::printf("stat.pairs=%lld\n", static_cast<long long>(stats.pairs));
    std::printf("stat.candidates=%lld\n",
                static_cast<long long>(stats.candidates));
    std::printf("stat.millis=%.4f\n", stats.total_millis);
  } else {
    std::printf("pairs: %lld (candidates: %lld, threads: %d, %.1f ms)\n",
                static_cast<long long>(stats.pairs),
                static_cast<long long>(stats.candidates), threads,
                stats.total_millis);
  }
  const int limit =
      static_cast<int>(flags.GetInt("print", 20));
  for (int i = 0; i < std::min<int>(limit, pairs.size()); ++i) {
    std::printf("%d %d\n", pairs[i].first, pairs[i].second);
  }
  if (static_cast<int>(pairs.size()) > limit) {
    std::printf("... (%zu total, raise --print to see more)\n", pairs.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) Usage();
  const std::string command = argv[1];
  const std::string kind = argv[2];
  const Flags flags(argc, argv, 3);
  if (command == "gen") return RunGen(kind, flags);
  if (command == "search") return RunSearch(kind, flags);
  if (command == "join") return RunJoin(kind, flags);
  Usage();
  return 2;
}
