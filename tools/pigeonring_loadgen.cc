// pigeonring_loadgen — load-generating client for `pigeonring_cli serve`.
//
// Usage:
//   pigeonring_loadgen --port P [--host H] [--connections N]
//       [--requests N] [--queries Q] [--seed S] [--stats kv]
//
// Connects `--connections` TCP clients (default 1) to a running
// pigeonring server, samples `--queries` query objects from the served
// dataset over the wire (the record op — the paper's
// queries-from-the-dataset protocol), then has every connection issue
// `--requests` single-query searches round-robin over that query pool,
// recording per-request latency into a common/histogram.h digest.
//
// Shed requests (the server's typed ResourceExhausted frames under
// admission control) are counted separately and do not fail the run —
// shedding is the server behaving as documented under overload. Any other
// error is fatal (exit 1). After the timed run, every connection re-issues
// the first query and all answers must be identical — connections are
// sessions over one snapshot, so a divergence is a server bug (exit 1).
//
// Output: a human-readable summary, or machine-readable key=value lines
// under --stats kv (qps counts completed requests only; shed replies are
// excluded from both the latency digest and the throughput numerator).
//
// Exit codes: 0 success; 1 typed Status error (connection refused, server
// error frame, cross-connection divergence); 2 usage error.

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/timer.h"
#include "net/client.h"

#include "flag_parser.h"

namespace {

using namespace pigeonring;
using tools::Check;
using tools::Flags;
using tools::Unwrap;

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pigeonring_loadgen --port P [--host H] [--connections N]\n"
      "                     [--requests N] [--queries Q] [--seed S]\n"
      "                     [--stats kv]\n");
  std::exit(2);
}

/// One connection's timed workload: `requests` searches round-robin over
/// the shared query pool, latencies into `latency`, sheds counted but not
/// recorded. The first fatal error is stored and ends the loop.
struct WorkerResult {
  Histogram latency;  // milliseconds per completed request
  long long completed = 0;
  long long shed = 0;
  std::optional<Status> fatal;
};

WorkerResult RunWorker(const std::string& host, int port,
                       const std::vector<api::Query>& queries,
                       long long requests) {
  WorkerResult out;
  auto client = net::Client::Connect(host, port);
  if (!client.ok()) {
    out.fatal = client.status();
    return out;
  }
  for (long long i = 0; i < requests; ++i) {
    const api::Query& query = queries[i % queries.size()];
    StopWatch watch;
    auto reply = client->Search(query);
    if (reply.ok()) {
      out.latency.Record(watch.ElapsedMillis());
      ++out.completed;
    } else if (reply.status().code() == StatusCode::kResourceExhausted) {
      ++out.shed;
    } else {
      out.fatal = reply.status();
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const Flags flags(argc, argv, 1,
                    {"port", "host", "connections", "requests", "queries",
                     "seed", "stats"});
  const int port = static_cast<int>(flags.RequireInt("port"));
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "--port expects a port in [1, 65535], got %d\n",
                 port);
    return 2;
  }
  const std::string host = flags.Get("host", "127.0.0.1");
  const long long connections = flags.GetInt("connections", 1);
  const long long requests = flags.GetInt("requests", 100);
  const long long num_queries = flags.GetInt("queries", 16);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  if (connections < 1 || requests < 1 || num_queries < 1) {
    std::fprintf(stderr,
                 "--connections, --requests, and --queries all expect "
                 "counts >= 1\n");
    return 2;
  }
  const std::string stats_mode = flags.Get("stats", "");
  if (!stats_mode.empty() && stats_mode != "kv") {
    std::fprintf(stderr, "unknown --stats mode '%s' (supported: kv)\n",
                 stats_mode.c_str());
    return 2;
  }
  const bool stats_kv = stats_mode == "kv";

  // Control connection: sample the query pool from the served dataset.
  net::Client control = Unwrap(net::Client::Connect(host, port));
  const net::ServerStats before = Unwrap(control.Stats());
  if (before.num_records == 0) {
    std::fprintf(stderr, "error: server database is empty\n");
    return 1;
  }
  Rng rng(seed);
  std::vector<api::Query> queries;
  for (long long i = 0; i < num_queries; ++i) {
    const int id = static_cast<int>(rng.NextBounded(before.num_records));
    queries.push_back(Unwrap(control.RecordQuery(id)));
  }

  // Timed run: every connection works through its own socket + thread.
  StopWatch wall;
  std::vector<WorkerResult> results(connections);
  {
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (long long c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        results[c] = RunWorker(host, port, queries, requests);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_millis = wall.ElapsedMillis();

  Histogram latency;
  long long completed = 0;
  long long shed = 0;
  for (const WorkerResult& result : results) {
    if (result.fatal.has_value()) Check(*result.fatal);
    latency.Merge(result.latency);
    completed += result.completed;
    shed += result.shed;
  }

  // Self-check: connections are sessions over one snapshot — the same
  // query must answer identically on every connection.
  std::vector<int> expected_ids;
  for (long long c = 0; c < connections; ++c) {
    net::Client probe = Unwrap(net::Client::Connect(host, port));
    auto reply = probe.Search(queries[0]);
    if (!reply.ok() &&
        reply.status().code() == StatusCode::kResourceExhausted) {
      continue;  // fully saturated server; nothing to compare
    }
    Check(reply.status());
    if (c == 0) {
      expected_ids = reply->ids;
    } else if (reply->ids != expected_ids) {
      std::fprintf(stderr,
                   "error: connection %lld answered differently from "
                   "connection 0 for the same query\n",
                   c);
      return 1;
    }
  }

  const double qps =
      wall_millis > 0 ? completed / (wall_millis / 1000.0) : 0.0;
  if (stats_kv) {
    std::printf("stat.connections=%lld\n", connections);
    std::printf("stat.requests_per_connection=%lld\n", requests);
    std::printf("stat.completed=%lld\n", completed);
    std::printf("stat.shed=%lld\n", shed);
    std::printf("stat.wall_millis=%.4f\n", wall_millis);
    std::printf("stat.qps=%.2f\n", qps);
    std::printf("stat.p50_millis=%.4f\n", latency.P50());
    std::printf("stat.p99_millis=%.4f\n", latency.P99());
  } else {
    std::printf(
        "%lld connections x %lld requests: %lld completed, %lld shed, "
        "%.1f ms wall\n",
        connections, requests, completed, shed, wall_millis);
    std::printf("qps=%.1f p50=%.3fms p99=%.3fms\n", qps, latency.P50(),
                latency.P99());
  }
  return 0;
}
